#include "replication/transport.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/binary.h"
#include "persist/crc32c.h"

namespace nepal::replication {

namespace {

constexpr char kShipMagic[8] = {'N', 'P', 'L', 'S', 'H', 'P', '0', '1'};
constexpr uint8_t kFrameTag = 0x02;
/// Trace-annotated frame: the 0x02 layout with a trace id (u64) and root
/// span id (u32) inserted after the ship timestamp. Emitted only when the
/// shipped commit was traced, so untraced traffic stays byte-identical to
/// the original protocol (a pre-tracing follower never encounters 0x03
/// unless its primary traces; a post-tracing follower accepts both).
constexpr uint8_t kFrameTagTraced = 0x03;
/// Sanity bound on wire lengths; anything larger is stream corruption.
constexpr uint64_t kMaxWireObjectBytes = 1ull << 32;

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

// ---- InProcessTransport ----

InProcessTransport::InProcessTransport(
    std::shared_ptr<persist::WalSubscription> subscription)
    : subscription_(std::move(subscription)) {}

InProcessTransport::~InProcessTransport() {
  if (subscription_ != nullptr) subscription_->Cancel();
}

Result<std::unique_ptr<InProcessTransport>> InProcessTransport::Connect(
    persist::DurableStore& primary, persist::SubscribeOptions options) {
  NEPAL_ASSIGN_OR_RETURN(std::shared_ptr<persist::WalSubscription> sub,
                         primary.Subscribe(options));
  return std::unique_ptr<InProcessTransport>(
      new InProcessTransport(std::move(sub)));
}

Result<ReplicationHello> InProcessTransport::Handshake() {
  ReplicationHello hello;
  hello.checkpoint_image = subscription_->checkpoint_image();
  hello.start_seq = subscription_->start_seq();
  return hello;
}

Result<bool> InProcessTransport::Next(persist::WalShipFrame* frame,
                                      std::chrono::milliseconds timeout) {
  return subscription_->Next(frame, timeout);
}

// ---- FdTransport ----

FdTransport::~FdTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Status FdTransport::ReadFully(char* buf, size_t n, bool eof_is_close) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::read(fd_, buf + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read replication stream: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      if (eof_is_close && done == 0) {
        return Status::Unavailable("primary closed the replication stream");
      }
      return Status::Corruption(
          "replication stream truncated mid-object (EOF after " +
          std::to_string(done) + " of " + std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Result<ReplicationHello> FdTransport::Handshake() {
  char header[8 + 8 + 8];
  NEPAL_RETURN_NOT_OK(ReadFully(header, sizeof(header),
                                /*eof_is_close=*/true));
  if (std::memcmp(header, kShipMagic, sizeof(kShipMagic)) != 0) {
    return Status::Corruption("bad replication stream magic");
  }
  ReplicationHello hello;
  hello.start_seq = ReadU64(header + 8);
  const uint64_t image_len = ReadU64(header + 16);
  if (image_len > kMaxWireObjectBytes) {
    return Status::Corruption("implausible checkpoint image length " +
                              std::to_string(image_len));
  }
  hello.checkpoint_image.resize(image_len);
  NEPAL_RETURN_NOT_OK(ReadFully(hello.checkpoint_image.data(), image_len,
                                /*eof_is_close=*/false));
  char crc_buf[4];
  NEPAL_RETURN_NOT_OK(ReadFully(crc_buf, sizeof(crc_buf),
                                /*eof_is_close=*/false));
  const uint32_t expected = persist::UnmaskCrc(ReadU32(crc_buf));
  const uint32_t actual = persist::Crc32c(hello.checkpoint_image.data(),
                                          hello.checkpoint_image.size());
  if (expected != actual) {
    return Status::Corruption("checkpoint image crc mismatch on the wire");
  }
  return hello;
}

Result<bool> FdTransport::Next(persist::WalShipFrame* frame,
                               std::chrono::milliseconds timeout) {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int r = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (r < 0) {
    if (errno == EINTR) return false;
    return Status::IoError(std::string("poll replication stream: ") +
                           std::strerror(errno));
  }
  if (r == 0) return false;  // timeout, no data yet
  // Data (or EOF) is ready; the tag byte read below classifies it and
  // selects the header layout (0x02 plain, 0x03 trace-annotated).
  char tag_byte;
  NEPAL_RETURN_NOT_OK(ReadFully(&tag_byte, 1, /*eof_is_close=*/true));
  const uint8_t tag = static_cast<uint8_t>(tag_byte);
  if (tag != kFrameTag && tag != kFrameTagTraced) {
    return Status::Corruption("unknown replication frame tag " +
                              std::to_string(tag));
  }
  char header[8 + 8 + 8 + 4 + 4 + 4];
  const size_t header_len =
      tag == kFrameTagTraced ? 8 + 8 + 8 + 4 + 4 + 4 : 8 + 8 + 4 + 4;
  NEPAL_RETURN_NOT_OK(ReadFully(header, header_len,
                                /*eof_is_close=*/false));
  const char* p = header;
  frame->segment_seq = ReadU64(p);
  p += 8;
  frame->shipped_at_us = static_cast<int64_t>(ReadU64(p));
  p += 8;
  if (tag == kFrameTagTraced) {
    frame->trace_id = ReadU64(p);
    p += 8;
    frame->root_span = ReadU32(p);
    p += 4;
  } else {
    frame->trace_id = 0;
    frame->root_span = 0;
  }
  const uint32_t len = ReadU32(p);
  p += 4;
  const uint32_t masked_crc = ReadU32(p);
  if (len > kMaxWireObjectBytes) {
    return Status::Corruption("implausible replication frame length " +
                              std::to_string(len));
  }
  frame->payload.resize(len);
  NEPAL_RETURN_NOT_OK(ReadFully(frame->payload.data(), len,
                                /*eof_is_close=*/false));
  if (persist::UnmaskCrc(masked_crc) !=
      persist::Crc32c(frame->payload.data(), frame->payload.size())) {
    return Status::Corruption("replication frame crc mismatch on the wire");
  }
  return true;
}

// ---- WalShipper ----

WalShipper::WalShipper(std::shared_ptr<persist::WalSubscription> subscription,
                       int fd)
    : subscription_(std::move(subscription)), fd_(fd) {}

WalShipper::~WalShipper() { Stop(); }

Result<std::unique_ptr<WalShipper>> WalShipper::Start(
    persist::DurableStore& store, int fd, persist::SubscribeOptions options) {
  NEPAL_ASSIGN_OR_RETURN(std::shared_ptr<persist::WalSubscription> sub,
                         store.Subscribe(options));
  auto shipper =
      std::unique_ptr<WalShipper>(new WalShipper(std::move(sub), fd));
  shipper->thread_ = std::thread([s = shipper.get()] { s->Run(); });
  return shipper;
}

void WalShipper::Stop() {
  stop_.store(true, std::memory_order_release);
  subscription_->Cancel();  // wakes a Next() blocked inside the pump
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalShipper::WriteFully(const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd_, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write replication stream: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

void WalShipper::Run() {
  Status status;
  // Hello first: magic, start sequence, then the checkpoint image.
  {
    std::string hello(kShipMagic, sizeof(kShipMagic));
    const std::string& image = subscription_->checkpoint_image();
    PutFixed64(&hello, subscription_->start_seq());
    PutFixed64(&hello, image.size());
    hello += image;
    PutFixed32(&hello, persist::MaskCrc(
                           persist::Crc32c(image.data(), image.size())));
    status = WriteFully(hello.data(), hello.size());
    bytes_shipped_.fetch_add(hello.size(), std::memory_order_relaxed);
  }
  while (status.ok() && !stop_.load(std::memory_order_acquire)) {
    persist::WalShipFrame frame;
    Result<bool> got =
        subscription_->Next(&frame, std::chrono::milliseconds(100));
    if (!got.ok()) {
      status = got.status();
      break;
    }
    if (!*got) continue;  // timeout; poll again
    std::string wire;
    wire.reserve(1 + 8 + 8 + 8 + 4 + 4 + 4 + frame.payload.size());
    const bool traced = frame.trace_id != 0;
    PutFixed8(&wire, traced ? kFrameTagTraced : kFrameTag);
    PutFixed64(&wire, frame.segment_seq);
    PutFixed64(&wire, static_cast<uint64_t>(frame.shipped_at_us));
    if (traced) {
      PutFixed64(&wire, frame.trace_id);
      PutFixed32(&wire, frame.root_span);
    }
    PutFixed32(&wire, static_cast<uint32_t>(frame.payload.size()));
    PutFixed32(&wire, persist::MaskCrc(persist::Crc32c(
                          frame.payload.data(), frame.payload.size())));
    wire += frame.payload;
    status = WriteFully(wire.data(), wire.size());
    if (status.ok()) {
      frames_shipped_.fetch_add(1, std::memory_order_relaxed);
      bytes_shipped_.fetch_add(wire.size(), std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  status_ = status;
}

}  // namespace nepal::replication
