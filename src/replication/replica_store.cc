#include "replication/replica_store.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <thread>
#include <utility>

#include "common/binary.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "persist/wal_format.h"

namespace nepal::replication {

namespace fs = std::filesystem;

namespace {
/// Upper bound on frames drained into one follower-side ApplyBatch; keeps a
/// long catch-up from starving stop/promotion checks between batches.
constexpr size_t kMaxApplyBatch = 256;

Status CheckFreshDirectory(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create replica directory " + dir + ": " +
                           ec.message());
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 || name.rfind("checkpoint-", 0) == 0) {
      return Status::AlreadyExists(
          "replica directory " + dir + " already holds Nepal data files (" +
          name + "); bootstrap requires a fresh directory");
    }
  }
  if (ec) {
    return Status::IoError("cannot list replica directory " + dir + ": " +
                           ec.message());
  }
  return Status::OK();
}

/// Sleeps `total_ms` in small slices so a stop flag is honored promptly.
void InterruptibleSleep(const std::atomic<bool>& stop, int total_ms) {
  constexpr int kSliceMs = 20;
  while (total_ms > 0 && !stop.load(std::memory_order_acquire)) {
    const int slice = std::min(total_ms, kSliceMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    total_ms -= slice;
  }
}
}  // namespace

ReplicaStore::ReplicaStore(std::unique_ptr<persist::DurableStore> store,
                           std::unique_ptr<ReplicationTransport> transport,
                           ReplicaOptions options)
    : store_(std::move(store)),
      transport_(std::move(transport)),
      options_(options) {
  store_ptr_.store(store_.get(), std::memory_order_release);
  db_ptr_.store(&store_->db(), std::memory_order_release);
  auto& reg = obs::MetricsRegistry::Global();
  m_applied_ = reg.GetCounter("nepal.replication.applied_records");
  m_skew_ = reg.GetCounter("nepal.replication.clock_skew_clamped");
  g_lag_ = reg.GetGauge("nepal.replication.lag_ms");
  h_lag_ = reg.GetHistogram("nepal.replication.apply_lag_ms",
                            obs::DefaultMillisBuckets());
  TouchProgress();
}

ReplicaStore::~ReplicaStore() {
  // Wake a session blocked mid-read so the drain join is prompt.
  ShutdownSocket(live_fd_.load(std::memory_order_acquire));
  drain_.Stop();
}

Result<std::unique_ptr<persist::DurableStore>> ReplicaStore::BootstrapGeneration(
    const std::string& dir, const schema::SchemaPtr& schema,
    const persist::BackendFactory& factory,
    const persist::DurableOptions& durable, const wire::HelloV1& hello) {
  NEPAL_RETURN_NOT_OK(CheckFreshDirectory(dir));
  // Seed the directory with the primary's image under the canonical name;
  // DurableStore::Open then restores it exactly like a local recovery
  // (fingerprint check included).
  NEPAL_RETURN_NOT_OK(persist::WriteFileAtomic(
      dir, persist::CheckpointFileName(hello.start_seq),
      hello.checkpoint_image));
  NEPAL_ASSIGN_OR_RETURN(
      std::unique_ptr<persist::DurableStore> store,
      persist::DurableStore::Open(dir, schema, factory, durable));
  if (!store->recovery_info().restored_checkpoint ||
      store->recovery_info().checkpoint_seq != hello.start_seq) {
    return Status::Corruption(
        "replica bootstrap did not restore the shipped checkpoint (seq " +
        std::to_string(hello.start_seq) + ")");
  }
  store->db().set_read_only(true);
  return store;
}

Result<std::unique_ptr<ReplicaStore>> ReplicaStore::Open(
    std::string dir, schema::SchemaPtr schema,
    const persist::BackendFactory& factory,
    std::unique_ptr<ReplicationTransport> transport, ReplicaOptions options) {
  NEPAL_ASSIGN_OR_RETURN(ReplicationHello hello, transport->Handshake());
  wire::HelloV1 v1;
  v1.checkpoint_image = std::move(hello.checkpoint_image);
  v1.start_seq = hello.start_seq;
  NEPAL_ASSIGN_OR_RETURN(
      std::unique_ptr<persist::DurableStore> store,
      BootstrapGeneration(dir, schema, factory, options.durable, v1));

  auto replica = std::unique_ptr<ReplicaStore>(new ReplicaStore(
      std::move(store), std::move(transport), options));
  replica->dir_ = std::move(dir);
  replica->drain_.Start(
      [r = replica.get()](const std::atomic<bool>& stop) { r->Run(stop); });
  return replica;
}

Result<std::unique_ptr<ReplicaStore>> ReplicaStore::Connect(
    std::string dir, schema::SchemaPtr schema,
    const persist::BackendFactory& factory, const SocketAddress& address,
    ConnectOptions options) {
  IgnoreSigPipe();
  // The initial deadline covers a primary that is still coming up: a
  // refused or not-yet-bound address (ECONNREFUSED / ENOENT on a unix
  // path) fails one attempt instantly, so keep attempting until the
  // deadline, not just until the first failure.
  const auto initial_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options.initial_connect_timeout_ms);
  OwnedFd fd;
  for (;;) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            initial_deadline - std::chrono::steady_clock::now());
    Result<OwnedFd> conn = ConnectWithDeadline(
        address, remaining < std::chrono::milliseconds(1)
                     ? std::chrono::milliseconds(1)
                     : remaining);
    if (conn.ok()) {
      fd = std::move(*conn);
      break;
    }
    if (conn.status().code() != StatusCode::kUnavailable ||
        std::chrono::steady_clock::now() >= initial_deadline) {
      return conn.status();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // A fresh follower has no position; the primary always bootstraps it.
  std::string hello_buf;
  wire::AppendFollowerHello(wire::FollowerHello{options.name, 0, 0},
                            &hello_buf);
  NEPAL_RETURN_NOT_OK(
      WriteFully(fd.get(), hello_buf.data(), hello_buf.size()));
  char mode;
  NEPAL_RETURN_NOT_OK(ReadFully(fd.get(), &mode, 1, /*eof_is_close=*/true));
  if (static_cast<uint8_t>(mode) != wire::kModeBootstrap) {
    return Status::Corruption(
        "primary answered a fresh follower with a resume");
  }
  wire::HelloV1 hello;
  NEPAL_RETURN_NOT_OK(wire::ReadHelloV1(fd.get(), &hello));
  NEPAL_ASSIGN_OR_RETURN(
      std::unique_ptr<persist::DurableStore> store,
      BootstrapGeneration(dir, schema, factory, options.replica.durable,
                          hello));

  auto replica = std::unique_ptr<ReplicaStore>(new ReplicaStore(
      std::move(store), nullptr, options.replica));
  replica->dir_ = std::move(dir);
  replica->schema_ = std::move(schema);
  replica->factory_ = factory;
  replica->connect_options_ = options;
  replica->address_ = address;
  replica->pending_fd_ = std::move(fd);
  replica->pos_seq_ = hello.start_seq;
  replica->pos_records_ = 0;
  replica->drain_.Start(
      [r = replica.get()](const std::atomic<bool>& stop) {
        r->ConnectLoop(stop);
      });
  return replica;
}

void ReplicaStore::TouchProgress() {
  last_progress_us_.store(WallClockMicros(), std::memory_order_release);
}

uint32_t ReplicaStore::staleness_ms() const {
  const int64_t last = last_progress_us_.load(std::memory_order_acquire);
  const int64_t age_ms = (WallClockMicros() - last) / 1000;
  if (age_ms <= 0) return 0;
  if (age_ms > std::numeric_limits<uint32_t>::max()) {
    return std::numeric_limits<uint32_t>::max();
  }
  return static_cast<uint32_t>(age_ms);
}

Status ReplicaStore::ApplyFrameBatch(
    storage::GraphDb& db, const std::vector<persist::WalShipFrame>& frames) {
  const int64_t received_us = WallClockMicros();
  const uint64_t t_decode = obs::TraceNowNs();
  std::vector<persist::WalRecord> recs;
  recs.reserve(frames.size());
  for (const persist::WalShipFrame& f : frames) {
    NEPAL_ASSIGN_OR_RETURN(persist::WalRecord rec,
                           persist::DecodeWalRecord(f.payload));
    recs.push_back(std::move(rec));
  }
  const uint64_t decode_ns = obs::TraceNowNs() - t_decode;
  const uint64_t t_apply = obs::TraceNowNs();
  NEPAL_RETURN_NOT_OK(persist::ApplyWalRecordBatch(db, recs));
  const uint64_t apply_ns = obs::TraceNowNs() - t_apply;
  records_applied_.fetch_add(frames.size(), std::memory_order_release);
  TouchProgress();
  RecordTracedApply(frames, received_us, decode_ns, apply_ns);
  m_applied_->Add(frames.size());
  const persist::WalShipFrame& newest = frames.back();
  if (newest.shipped_at_us > 0) {
    // Catch-up frames carry no ship time; only live frames move the lag.
    const int64_t lag_ms = (WallClockMicros() - newest.shipped_at_us) / 1000;
    if (lag_ms < 0) {
      // A frame from the "future" means the primary's wall clock runs
      // ahead of ours. Clamping to zero keeps the gauge sane, but the
      // skew itself must not be silent: it biases every lag reading low.
      m_skew_->Add(1);
    }
    g_lag_->Set(lag_ms > 0 ? lag_ms : 0);
    h_lag_->Observe(lag_ms > 0 ? static_cast<uint64_t>(lag_ms) : 0);
  }
  return Status::OK();
}

void ReplicaStore::Run(const std::atomic<bool>& stop) {
  // This thread is the only writer a read-only replica admits.
  storage::GraphDb::ReplayScope replay(store_->db());
  Status status;
  while (!stop.load(std::memory_order_acquire)) {
    persist::WalShipFrame frame;
    Result<bool> got = transport_->Next(
        &frame, std::chrono::milliseconds(options_.poll_interval_ms));
    if (!got.ok()) {
      status = got.status();
      break;
    }
    if (!*got) {
      // Connected and idle: the replica is caught up with the stream.
      TouchProgress();
      continue;
    }

    // Re-batch: a group the primary committed together (or a catch-up
    // burst) usually has its remaining frames already buffered. Drain them
    // without blocking and apply everything as one ApplyBatch — one writer
    // lock, one commit epoch, one fsync on the follower's own WAL.
    std::vector<persist::WalShipFrame> frames;
    frames.push_back(std::move(frame));
    while (frames.size() < kMaxApplyBatch) {
      persist::WalShipFrame extra;
      Result<bool> more =
          transport_->Next(&extra, std::chrono::milliseconds(0));
      if (!more.ok() || !*more) break;  // stream errors resurface next loop
      frames.push_back(std::move(extra));
    }
    status = ApplyFrameBatch(store_->db(), frames);
    if (!status.ok()) break;
  }
  if (!status.ok() && status.code() != StatusCode::kUnavailable) {
    fatal_.store(true, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lock(mu_);
  status_ = status;
}

void ReplicaStore::ConnectLoop(const std::atomic<bool>& stop) {
  int backoff_ms = connect_options_.reconnect_initial_backoff_ms;
  bool initial_session = true;
  while (!stop.load(std::memory_order_acquire)) {
    OwnedFd fd;
    if (initial_session && pending_fd_.valid()) {
      // Connect() already connected, handshook and bootstrapped.
      fd = std::move(pending_fd_);
    } else {
      SocketAddress address;
      {
        std::lock_guard<std::mutex> lock(mu_);
        address = address_;
      }
      Result<OwnedFd> conn = ConnectWithDeadline(
          address,
          std::chrono::milliseconds(connect_options_.connect_timeout_ms));
      Status session = conn.ok() ? HandshakeFollower(conn->get())
                                 : conn.status();
      if (!session.ok()) {
        if (session.code() != StatusCode::kUnavailable) {
          // A handshake that fails for a non-transport reason (corrupt
          // stream, bootstrap I/O failure) will fail the same way again;
          // freeze instead of hot-looping.
          fatal_.store(true, std::memory_order_release);
          std::lock_guard<std::mutex> lock(mu_);
          status_ = session;
          return;
        }
        InterruptibleSleep(stop, backoff_ms);
        backoff_ms = std::min(backoff_ms * 2,
                              connect_options_.reconnect_max_backoff_ms);
        continue;
      }
      fd = std::move(*conn);
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::Global()
          .GetCounter("nepal.replication.replica.reconnects")
          ->Add(1);
    }
    initial_session = false;
    backoff_ms = connect_options_.reconnect_initial_backoff_ms;

    live_fd_.store(fd.get(), std::memory_order_release);
    Status session = ApplyStream(stop, fd.get());
    live_fd_.store(-1, std::memory_order_release);
    fd.reset();
    {
      std::lock_guard<std::mutex> lock(mu_);
      status_ = session;
    }
    if (!session.ok() && session.code() != StatusCode::kUnavailable) {
      // Replay/decode failure: the follower's copy can no longer be
      // trusted to match the primary. Freeze at the last good position.
      fatal_.store(true, std::memory_order_release);
      return;
    }
    // Stream broke (primary restart, network, Repoint): reconnect.
  }
}

Status ReplicaStore::HandshakeFollower(int fd) {
  bool force;
  {
    std::lock_guard<std::mutex> lock(mu_);
    force = force_bootstrap_;
  }
  const uint64_t resume_seq = force ? 0 : pos_seq_;
  const uint64_t resume_skip = force ? 0 : pos_records_;
  std::string hello_buf;
  wire::AppendFollowerHello(
      wire::FollowerHello{connect_options_.name, resume_seq, resume_skip},
      &hello_buf);
  NEPAL_RETURN_NOT_OK(WriteFully(fd, hello_buf.data(), hello_buf.size()));
  char mode;
  NEPAL_RETURN_NOT_OK(ReadFully(fd, &mode, 1, /*eof_is_close=*/true));
  auto& reg = obs::MetricsRegistry::Global();
  if (static_cast<uint8_t>(mode) == wire::kModeResume) {
    char echo[8];
    NEPAL_RETURN_NOT_OK(ReadFully(fd, echo, sizeof(echo),
                                  /*eof_is_close=*/false));
    if (wire::ReadU64(echo) != resume_seq) {
      return Status::Corruption("primary echoed a different resume segment");
    }
    resumes_.fetch_add(1, std::memory_order_relaxed);
    reg.GetCounter("nepal.replication.replica.resumes")->Add(1);
  } else if (static_cast<uint8_t>(mode) == wire::kModeBootstrap) {
    // Resume was impossible (position pruned beyond WAL retention, or we
    // were re-pointed at a different primary): start a fresh generation
    // and atomically swap the serving database. The old generation stays
    // alive for reads that raced the swap.
    wire::HelloV1 hello;
    NEPAL_RETURN_NOT_OK(wire::ReadHelloV1(fd, &hello));
    ++generation_;
    const std::string gen_dir =
        dir_ + "/reboot-" + std::to_string(generation_);
    NEPAL_ASSIGN_OR_RETURN(
        std::unique_ptr<persist::DurableStore> fresh,
        BootstrapGeneration(gen_dir, schema_, factory_,
                            connect_options_.replica.durable, hello));
    retired_.push_back(std::move(store_));
    store_ = std::move(fresh);
    store_ptr_.store(store_.get(), std::memory_order_release);
    db_ptr_.store(&store_->db(), std::memory_order_release);
    pos_seq_ = hello.start_seq;
    pos_records_ = 0;
    rebootstraps_.fetch_add(1, std::memory_order_relaxed);
    reg.GetCounter("nepal.replication.replica.rebootstraps")->Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    force_bootstrap_ = false;
  } else {
    return Status::Corruption("unknown replication handshake mode " +
                              std::to_string(mode));
  }
  TouchProgress();
  return Status::OK();
}

Status ReplicaStore::ApplyStream(const std::atomic<bool>& stop, int fd) {
  // The generation is fixed for the whole session: a swap only ever
  // happens in HandshakeFollower, before this is called.
  storage::GraphDb& db = *db_ptr_.load(std::memory_order_acquire);
  storage::GraphDb::ReplayScope replay(db);
  uint64_t session_applied = 0;
  while (!stop.load(std::memory_order_acquire)) {
    {
      // A Repoint() that raced this session's startup (before live_fd_ was
      // published) could not break the stream with a socket shutdown; the
      // poll cadence picks the flag up instead.
      std::lock_guard<std::mutex> lock(mu_);
      if (force_bootstrap_) {
        return Status::Unavailable(
            "follower re-pointed at a new primary; dropping the session");
      }
    }
    persist::WalShipFrame frame;
    NEPAL_ASSIGN_OR_RETURN(
        bool got,
        wire::ReadFrame(fd, &frame,
                        std::chrono::milliseconds(options_.poll_interval_ms)));
    if (!got) {
      // Connected and idle: the replica is caught up with the stream.
      TouchProgress();
      continue;
    }
    std::vector<persist::WalShipFrame> frames;
    frames.push_back(std::move(frame));
    while (frames.size() < kMaxApplyBatch) {
      persist::WalShipFrame extra;
      Result<bool> more =
          wire::ReadFrame(fd, &extra, std::chrono::milliseconds(0));
      if (!more.ok() || !*more) break;  // stream errors resurface next loop
      frames.push_back(std::move(extra));
    }
    NEPAL_RETURN_NOT_OK(ApplyFrameBatch(db, frames));
    for (const persist::WalShipFrame& f : frames) {
      if (f.segment_seq != pos_seq_) {
        pos_seq_ = f.segment_seq;
        pos_records_ = 0;
      }
      ++pos_records_;
    }
    session_applied += frames.size();
    // Close the loop: one ack per applied batch. Its applied_records is
    // session-relative — the primary translates into commit-token units
    // via the per-frame stamps it recorded at ship time.
    wire::Ack ack;
    ack.applied_records = session_applied;
    ack.position_seq = pos_seq_;
    ack.position_records = pos_records_;
    ack.applied_at_us = WallClockMicros();
    ack.staleness_ms = staleness_ms();
    std::string out;
    wire::AppendAck(ack, &out);
    NEPAL_RETURN_NOT_OK(WriteFully(fd, out.data(), out.size()));
  }
  return Status::OK();
}

Status ReplicaStore::Repoint(const SocketAddress& address) {
  if (transport_ != nullptr) {
    return Status::InvalidArgument(
        "Repoint requires a socket follower (ReplicaStore::Connect)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    address_ = address;
    // Our applied position is meaningless against a different primary's
    // WAL; the next handshake must not claim it.
    force_bootstrap_ = true;
  }
  ShutdownSocket(live_fd_.load(std::memory_order_acquire));
  return Status::OK();
}

void ReplicaStore::RecordTracedApply(
    const std::vector<persist::WalShipFrame>& frames, int64_t received_us,
    uint64_t decode_ns, uint64_t apply_ns) {
  const persist::WalShipFrame* traced = nullptr;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (it->trace_id != 0) {
      traced = &*it;
      break;
    }
  }
  if (traced == nullptr) return;
  int64_t wire_us = 0;
  if (traced->shipped_at_us > 0) {
    wire_us = received_us - traced->shipped_at_us;
    if (wire_us < 0) wire_us = 0;  // primary wall clock runs ahead of ours
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_traced_ = LastTracedApply{traced->trace_id, wire_us,
                                   decode_ns / 1000, apply_ns / 1000,
                                   frames.size()};
  }
  auto& tracer = obs::Tracer::Global();
  obs::Tracer::Joined joined = tracer.JoinTrace(traced->trace_id, "replica");
  if (!joined) return;
  // In-process the primary's own root span is addressable, so the segments
  // land in the very tree ApplyBatch built; cross-process they hang off
  // the local root created under the remote trace id.
  const uint32_t parent = !joined.local && traced->root_span != 0
                              ? traced->root_span
                              : joined.parent;
  if (traced->shipped_at_us > 0) {
    joined.trace->AddSpan(parent, "wire",
                          static_cast<uint64_t>(wire_us) * 1000);
  }
  joined.trace->AddSpan(parent, "replica.decode", decode_ns, frames.size());
  joined.trace->AddSpan(parent, "replica.apply", apply_ns, frames.size());
  tracer.FinishJoined(joined);
}

Status ReplicaStore::Promote() {
  if (promoted_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  drain_.Stop();
  {
    // A stream error other than "primary gone" means the follower may be
    // behind commits it acknowledged nothing about — still safe to
    // promote, but surface it rather than silently serving a truncated
    // history.
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok() && status_.code() != StatusCode::kUnavailable) {
      return Status(status_.code(),
                    "refusing to promote: apply loop failed: " +
                        status_.message());
    }
  }
  store_->db().set_read_only(false);
  // A checkpoint gives the promotion point a clean segment boundary: the
  // pre-promotion history is sealed in segments <= the checkpoint's, and
  // everything the new primary writes lands after it.
  NEPAL_RETURN_NOT_OK(store_->Checkpoint());
  promoted_.store(true, std::memory_order_release);
  return Status::OK();
}

}  // namespace nepal::replication
