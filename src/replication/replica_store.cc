#include "replication/replica_store.h"

#include <filesystem>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "persist/wal_format.h"

namespace nepal::replication {

namespace fs = std::filesystem;

namespace {
/// Upper bound on frames drained into one follower-side ApplyBatch; keeps a
/// long catch-up from starving stop/promotion checks between batches.
constexpr size_t kMaxApplyBatch = 256;
}  // namespace

ReplicaStore::ReplicaStore(std::unique_ptr<persist::DurableStore> store,
                           std::unique_ptr<ReplicationTransport> transport,
                           ReplicaOptions options)
    : store_(std::move(store)),
      transport_(std::move(transport)),
      options_(options) {}

ReplicaStore::~ReplicaStore() { drain_.Stop(); }

Result<std::unique_ptr<ReplicaStore>> ReplicaStore::Open(
    std::string dir, schema::SchemaPtr schema,
    const persist::BackendFactory& factory,
    std::unique_ptr<ReplicationTransport> transport, ReplicaOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create replica directory " + dir + ": " +
                           ec.message());
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 || name.rfind("checkpoint-", 0) == 0) {
      return Status::AlreadyExists(
          "replica directory " + dir + " already holds Nepal data files (" +
          name + "); bootstrap requires a fresh directory");
    }
  }
  if (ec) {
    return Status::IoError("cannot list replica directory " + dir + ": " +
                           ec.message());
  }

  NEPAL_ASSIGN_OR_RETURN(ReplicationHello hello, transport->Handshake());
  // Seed the directory with the primary's image under the canonical name;
  // DurableStore::Open then restores it exactly like a local recovery
  // (fingerprint check included).
  NEPAL_RETURN_NOT_OK(persist::WriteFileAtomic(
      dir, persist::CheckpointFileName(hello.start_seq),
      hello.checkpoint_image));
  NEPAL_ASSIGN_OR_RETURN(
      std::unique_ptr<persist::DurableStore> store,
      persist::DurableStore::Open(dir, schema, factory, options.durable));
  if (!store->recovery_info().restored_checkpoint ||
      store->recovery_info().checkpoint_seq != hello.start_seq) {
    return Status::Corruption(
        "replica bootstrap did not restore the shipped checkpoint (seq " +
        std::to_string(hello.start_seq) + ")");
  }
  store->db().set_read_only(true);

  auto replica = std::unique_ptr<ReplicaStore>(new ReplicaStore(
      std::move(store), std::move(transport), options));
  replica->drain_.Start(
      [r = replica.get()](const std::atomic<bool>& stop) { r->Run(stop); });
  return replica;
}

void ReplicaStore::Run(const std::atomic<bool>& stop) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* applied = reg.GetCounter("nepal.replication.applied_records");
  obs::Counter* skew_clamped =
      reg.GetCounter("nepal.replication.clock_skew_clamped");
  obs::Gauge* lag_gauge = reg.GetGauge("nepal.replication.lag_ms");
  obs::Histogram* lag_hist = reg.GetHistogram(
      "nepal.replication.apply_lag_ms", obs::DefaultMillisBuckets());
  // This thread is the only writer a read-only replica admits.
  storage::GraphDb::ReplayScope replay(store_->db());
  Status status;
  while (!stop.load(std::memory_order_acquire)) {
    persist::WalShipFrame frame;
    Result<bool> got = transport_->Next(
        &frame, std::chrono::milliseconds(options_.poll_interval_ms));
    if (!got.ok()) {
      status = got.status();
      break;
    }
    if (!*got) continue;  // timeout; poll again

    // Re-batch: a group the primary committed together (or a catch-up
    // burst) usually has its remaining frames already buffered. Drain them
    // without blocking and apply everything as one ApplyBatch — one writer
    // lock, one commit epoch, one fsync on the follower's own WAL.
    std::vector<persist::WalShipFrame> frames;
    frames.push_back(std::move(frame));
    while (frames.size() < kMaxApplyBatch) {
      persist::WalShipFrame extra;
      Result<bool> more =
          transport_->Next(&extra, std::chrono::milliseconds(0));
      if (!more.ok() || !*more) break;  // stream errors resurface next loop
      frames.push_back(std::move(extra));
    }
    const int64_t received_us = WallClockMicros();
    const uint64_t t_decode = obs::TraceNowNs();
    std::vector<persist::WalRecord> recs;
    recs.reserve(frames.size());
    Status decode_status;
    for (const persist::WalShipFrame& f : frames) {
      Result<persist::WalRecord> rec = persist::DecodeWalRecord(f.payload);
      if (!rec.ok()) {
        decode_status = rec.status();
        break;
      }
      recs.push_back(std::move(rec.value()));
    }
    const uint64_t decode_ns = obs::TraceNowNs() - t_decode;
    const uint64_t t_apply = obs::TraceNowNs();
    Status applied_status =
        decode_status.ok()
            ? persist::ApplyWalRecordBatch(store_->db(), recs)
            : decode_status;
    const uint64_t apply_ns = obs::TraceNowNs() - t_apply;
    if (!applied_status.ok()) {
      status = applied_status;
      break;
    }
    records_applied_.fetch_add(frames.size(), std::memory_order_release);
    RecordTracedApply(frames, received_us, decode_ns, apply_ns);
    applied->Add(frames.size());
    const persist::WalShipFrame& newest = frames.back();
    if (newest.shipped_at_us > 0) {
      // Catch-up frames carry no ship time; only live frames move the lag.
      const int64_t lag_ms =
          (WallClockMicros() - newest.shipped_at_us) / 1000;
      if (lag_ms < 0) {
        // A frame from the "future" means the primary's wall clock runs
        // ahead of ours. Clamping to zero keeps the gauge sane, but the
        // skew itself must not be silent: it biases every lag reading low.
        skew_clamped->Add(1);
      }
      lag_gauge->Set(lag_ms > 0 ? lag_ms : 0);
      lag_hist->Observe(lag_ms > 0 ? static_cast<uint64_t>(lag_ms) : 0);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  status_ = status;
}

void ReplicaStore::RecordTracedApply(
    const std::vector<persist::WalShipFrame>& frames, int64_t received_us,
    uint64_t decode_ns, uint64_t apply_ns) {
  const persist::WalShipFrame* traced = nullptr;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (it->trace_id != 0) {
      traced = &*it;
      break;
    }
  }
  if (traced == nullptr) return;
  int64_t wire_us = 0;
  if (traced->shipped_at_us > 0) {
    wire_us = received_us - traced->shipped_at_us;
    if (wire_us < 0) wire_us = 0;  // primary wall clock runs ahead of ours
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_traced_ = LastTracedApply{traced->trace_id, wire_us,
                                   decode_ns / 1000, apply_ns / 1000,
                                   frames.size()};
  }
  auto& tracer = obs::Tracer::Global();
  obs::Tracer::Joined joined = tracer.JoinTrace(traced->trace_id, "replica");
  if (!joined) return;
  // In-process the primary's own root span is addressable, so the segments
  // land in the very tree ApplyBatch built; cross-process they hang off
  // the local root created under the remote trace id.
  const uint32_t parent = !joined.local && traced->root_span != 0
                              ? traced->root_span
                              : joined.parent;
  if (traced->shipped_at_us > 0) {
    joined.trace->AddSpan(parent, "wire",
                          static_cast<uint64_t>(wire_us) * 1000);
  }
  joined.trace->AddSpan(parent, "replica.decode", decode_ns, frames.size());
  joined.trace->AddSpan(parent, "replica.apply", apply_ns, frames.size());
  tracer.FinishJoined(joined);
}

Status ReplicaStore::Promote() {
  if (promoted_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  drain_.Stop();
  {
    // A stream error other than "primary gone" means the follower may be
    // behind commits it acknowledged nothing about — still safe to
    // promote, but surface it rather than silently serving a truncated
    // history.
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok() && status_.code() != StatusCode::kUnavailable) {
      return Status(status_.code(),
                    "refusing to promote: apply loop failed: " +
                        status_.message());
    }
  }
  store_->db().set_read_only(false);
  // A checkpoint gives the promotion point a clean segment boundary: the
  // pre-promotion history is sealed in segments <= the checkpoint's, and
  // everything the new primary writes lands after it.
  NEPAL_RETURN_NOT_OK(store_->Checkpoint());
  promoted_.store(true, std::memory_order_release);
  return Status::OK();
}

}  // namespace nepal::replication
