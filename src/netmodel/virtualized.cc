#include "netmodel/virtualized.h"

#include <algorithm>

#include "schema/dsl_parser.h"

namespace nepal::netmodel {

namespace {

// 54 node classes / 12 edge classes, mirroring the richness the paper
// reports for the virtualized service inventory.
constexpr const char* kVirtualizedSchemaDsl = R"(
data_type routingTableEntry {
  address: ip;
  mask: int;
  interface: string;
}

# ---- Service layer ----
node Service : Node { customer: string; }
node CustomerService : Service {}
node InfraService : Service {}
node VNF : Node { vnf_type: string; }
node DNS : VNF {}
node Firewall : VNF {}
node LoadBalancer : VNF {}
node NAT : VNF {}
node Gateway : VNF {}
node IDS : VNF {}
node WanAccelerator : VNF {}
node EPC : VNF {}
node IMS : VNF {}
node CDN : VNF {}
node Vpn : VNF {}
node SessionBorderController : VNF {}

# ---- Logical layer ----
node VFC : Node { role: string; }
node Proxy : VFC {}
node WebServer : VFC {}
node AppServer : VFC {}
node DbServer : VFC {}
node Cache : VFC {}
node MessageQueue : VFC {}
node Controller : VFC {}
node Worker : VFC {}
node Collector : VFC {}
node Balancer : VFC {}

# ---- Virtualization layer ----
node Container : Node { status: string; }
node VM : Container { ip: ip; }
node VMWare : VM {}
node OnMetal : VM {}
node KvmVM : VM {}
node Docker : Container {}
node VirtualNetwork : Node { cidr: string; }
node Subnet : VirtualNetwork {}
node VirtualRouter : Node {}
node VirtualInterface : Node { mac: string; }
node FloatingIp : Node { address: ip; }
node Tenant : Node {}
node Image : Node {}
node Flavor : Node { vcpus: int; memory_mb: int; }

# ---- Physical layer ----
node PhysicalElement : Node { vendor: string; }
node Host : PhysicalElement { serial: string; }
node ComputeHost : Host {}
node StorageHost : Host {}
node Switch : PhysicalElement {}
node TorSwitch : Switch {}
node AggSwitch : Switch {}
node Router : PhysicalElement { routingTable: list<routingTableEntry>; }
node EdgeRouter : Router {}
node CoreRouter : Router {}
node Rack : Node {}
node Datacenter : Node {}
node Region : Node {}

# ---- Edge classes ----
edge Vertical : Edge {}
edge composed_of : Vertical {}
edge hosted_on : Vertical {}
edge on_vm : hosted_on {}
edge on_server : hosted_on {}
edge located_in : Vertical {}
edge ConnectedTo : Edge {}
edge connects : ConnectedTo { bandwidth: int; }
edge virtual_connects : ConnectedTo { ip_address: ip; }
edge flow : ConnectedTo {}
edge attaches : ConnectedTo {}
edge uses : Edge {}

allow composed_of (Service -> VNF);
allow composed_of (VNF -> VFC);
allow on_vm (VFC -> Container);
allow on_server (Container -> Host);
allow located_in (Host -> Rack);
allow located_in (Rack -> Datacenter);
allow located_in (Datacenter -> Region);
allow connects (Host -> Switch);
allow connects (Switch -> Host);
allow connects (Switch -> Switch);
allow connects (Switch -> Router);
allow connects (Router -> Switch);
allow connects (Router -> Router);
allow virtual_connects (Container -> VirtualNetwork);
allow virtual_connects (VirtualNetwork -> Container);
allow virtual_connects (VirtualNetwork -> VirtualRouter);
allow virtual_connects (VirtualRouter -> VirtualNetwork);
allow flow (VNF -> VNF);
allow attaches (Container -> VirtualInterface);
allow attaches (VirtualInterface -> VirtualNetwork);
allow attaches (FloatingIp -> Container);
allow uses (Container -> Image);
allow uses (Container -> Flavor);
allow uses (Tenant -> Service);
)";

const char* kVnfClasses[] = {"DNS",  "Firewall", "LoadBalancer",
                             "NAT",  "Gateway",  "IDS",
                             "WanAccelerator", "EPC", "IMS",
                             "CDN",  "Vpn",      "SessionBorderController"};
const char* kVfcClasses[] = {"Proxy",   "WebServer",    "AppServer",
                             "DbServer", "Cache",       "MessageQueue",
                             "Controller", "Worker",    "Collector",
                             "Balancer"};
const char* kVmClasses[] = {"VMWare", "OnMetal", "KvmVM"};

}  // namespace

schema::SchemaPtr VirtualizedSchema() {
  auto result = schema::ParseSchemaDsl(kVirtualizedSchemaDsl);
  if (!result.ok()) {
    fprintf(stderr, "VirtualizedSchema: %s\n",
            result.status().ToString().c_str());
    abort();
  }
  return *result;
}

Result<VirtualizedNetwork> BuildVirtualizedNetwork(
    const VirtualizedParams& params, const BackendFactory& factory) {
  VirtualizedNetwork net;
  schema::SchemaPtr schema = VirtualizedSchema();
  net.db = std::make_unique<storage::GraphDb>(schema, factory(schema));
  storage::GraphDb& db = *net.db;
  Rng rng(params.seed);

  auto node = [&](const std::string& cls, const std::string& name,
                  schema::FieldValues extra = {}) -> Result<Uid> {
    extra.emplace_back("name", Value(name));
    return db.AddNode(cls, extra);
  };
  auto edge = [&](const std::string& cls, Uid s, Uid t,
                  schema::FieldValues fields = {}) -> Result<Uid> {
    return db.AddEdge(cls, s, t, fields);
  };

  // ---- Physical layer ----
  NEPAL_ASSIGN_OR_RETURN(Uid region, node("Region", "region-east"));
  std::vector<Uid> dcs;
  for (int i = 0; i < params.num_datacenters; ++i) {
    NEPAL_ASSIGN_OR_RETURN(Uid dc,
                           node("Datacenter", "dc-" + std::to_string(i)));
    NEPAL_RETURN_NOT_OK(edge("located_in", dc, region).status());
    dcs.push_back(dc);
  }
  std::vector<Uid> routers;
  for (int i = 0; i < params.num_routers; ++i) {
    NEPAL_ASSIGN_OR_RETURN(
        Uid r, node(i < 2 ? "CoreRouter" : "EdgeRouter",
                    "router-" + std::to_string(i),
                    {{"vendor", Value(i % 2 ? "cisco" : "juniper")}}));
    routers.push_back(r);
  }
  // Router ring (both directions).
  for (size_t i = 0; i < routers.size(); ++i) {
    Uid a = routers[i], b = routers[(i + 1) % routers.size()];
    NEPAL_RETURN_NOT_OK(edge("connects", a, b).status());
    NEPAL_RETURN_NOT_OK(edge("connects", b, a).status());
  }
  std::vector<Uid> aggs;
  for (int i = 0; i < params.num_agg_switches; ++i) {
    NEPAL_ASSIGN_OR_RETURN(Uid agg,
                           node("AggSwitch", "agg-" + std::to_string(i)));
    aggs.push_back(agg);
    // Each aggregation switch uplinks to two routers.
    for (int k = 0; k < 2; ++k) {
      Uid r = routers[(static_cast<size_t>(i) + k) % routers.size()];
      NEPAL_RETURN_NOT_OK(edge("connects", agg, r).status());
      NEPAL_RETURN_NOT_OK(edge("connects", r, agg).status());
    }
  }
  int num_racks = (params.num_hosts + params.hosts_per_rack - 1) /
                  params.hosts_per_rack;
  std::vector<Uid> racks;
  for (int i = 0; i < num_racks; ++i) {
    NEPAL_ASSIGN_OR_RETURN(Uid rack, node("Rack", "rack-" + std::to_string(i)));
    NEPAL_RETURN_NOT_OK(
        edge("located_in", rack, dcs[static_cast<size_t>(i) % dcs.size()])
            .status());
    racks.push_back(rack);
    NEPAL_ASSIGN_OR_RETURN(Uid tor,
                           node("TorSwitch", "tor-" + std::to_string(i)));
    net.tor_switches.push_back(tor);
    // ToR dual-homed to two aggregation switches.
    for (int k = 0; k < 2; ++k) {
      Uid agg = aggs[(static_cast<size_t>(i) + k) % aggs.size()];
      NEPAL_RETURN_NOT_OK(edge("connects", tor, agg).status());
      NEPAL_RETURN_NOT_OK(edge("connects", agg, tor).status());
    }
  }
  for (int i = 0; i < params.num_hosts; ++i) {
    bool storage_host = rng.Chance(0.15);
    NEPAL_ASSIGN_OR_RETURN(
        Uid host,
        node(storage_host ? "StorageHost" : "ComputeHost",
             "host-" + std::to_string(i),
             {{"serial", Value("SN" + std::to_string(100000 + i))},
              {"vendor", Value(rng.Chance(0.5) ? "dell" : "hp")}}));
    net.hosts.push_back(host);
    size_t rack_idx = static_cast<size_t>(i / params.hosts_per_rack);
    NEPAL_RETURN_NOT_OK(edge("located_in", host, racks[rack_idx]).status());
    // Host dual-homed to its rack ToR and a neighbour ToR.
    for (int k = 0; k < 2; ++k) {
      Uid tor = net.tor_switches[(rack_idx + static_cast<size_t>(k)) %
                                 net.tor_switches.size()];
      NEPAL_RETURN_NOT_OK(
          edge("connects", host, tor, {{"bandwidth", Value(25000)}}).status());
      NEPAL_RETURN_NOT_OK(
          edge("connects", tor, host, {{"bandwidth", Value(25000)}}).status());
    }
  }

  // ---- Virtualization substrate: networks, routers, images, flavors ----
  std::vector<Uid> vrouters;
  for (int i = 0; i < params.num_vrouters; ++i) {
    NEPAL_ASSIGN_OR_RETURN(Uid vr,
                           node("VirtualRouter", "vr-" + std::to_string(i)));
    vrouters.push_back(vr);
  }
  for (int i = 0; i < params.num_vnets; ++i) {
    NEPAL_ASSIGN_OR_RETURN(
        Uid vnet, node(i % 3 == 0 ? "Subnet" : "VirtualNetwork",
                       "vnet-" + std::to_string(i),
                       {{"cidr", Value("10." + std::to_string(i / 250) + "." +
                                       std::to_string(i % 250) + ".0/24")}}));
    net.vnets.push_back(vnet);
    for (int k = 0; k < 1 + (i % 2); ++k) {
      Uid vr = vrouters[(static_cast<size_t>(i) + k) % vrouters.size()];
      NEPAL_RETURN_NOT_OK(edge("virtual_connects", vnet, vr).status());
      NEPAL_RETURN_NOT_OK(edge("virtual_connects", vr, vnet).status());
    }
  }
  // Shared management networks: large virtual networks that half of the
  // containers attach to. They give VM-VM navigation the high path
  // multiplicity the paper reports (hundreds of pathways per pair).
  std::vector<Uid> mgmt_vnets;
  for (int i = 0; i < 3; ++i) {
    NEPAL_ASSIGN_OR_RETURN(
        Uid vnet, node("VirtualNetwork", "mgmt-" + std::to_string(i),
                       {{"cidr", Value("172.16." + std::to_string(i) +
                                       ".0/24")}}));
    mgmt_vnets.push_back(vnet);
    for (int k = 0; k < 2; ++k) {
      Uid vr = vrouters[(static_cast<size_t>(i) + k) % vrouters.size()];
      NEPAL_RETURN_NOT_OK(edge("virtual_connects", vnet, vr).status());
      NEPAL_RETURN_NOT_OK(edge("virtual_connects", vr, vnet).status());
    }
  }
  std::vector<Uid> images, flavors;
  for (int i = 0; i < 5; ++i) {
    NEPAL_ASSIGN_OR_RETURN(Uid img, node("Image", "img-" + std::to_string(i)));
    images.push_back(img);
    NEPAL_ASSIGN_OR_RETURN(
        Uid flavor, node("Flavor", "flavor-" + std::to_string(i),
                         {{"vcpus", Value(1 << i)},
                          {"memory_mb", Value(1024 << i)}}));
    flavors.push_back(flavor);
  }

  // Compute hosts only for VM placement.
  std::vector<Uid> compute_hosts;
  for (Uid h : net.hosts) {
    auto cur = db.GetCurrent(h);
    if (cur.ok() && cur->cls->name() == "ComputeHost") {
      compute_hosts.push_back(h);
    }
  }
  if (compute_hosts.empty()) compute_hosts = net.hosts;

  // Attaches one VM (or Docker container) to a VFC, with placement,
  // image/flavor and virtual network attachments.
  auto add_container = [&](Uid vfc, const std::string& name) -> Result<Uid> {
    bool docker = rng.Chance(0.1);
    Uid vm;
    if (docker) {
      NEPAL_ASSIGN_OR_RETURN(
          vm, node("Docker", name, {{"status", Value("Green")}}));
    } else {
      const char* cls = kVmClasses[rng.Below(3)];
      NEPAL_ASSIGN_OR_RETURN(
          vm, node(cls, name,
                   {{"status", Value("Green")},
                    {"ip", Value::Ip(0x0a000000u |
                                     static_cast<uint32_t>(rng.Below(1u << 24)))}}));
      net.vms.push_back(vm);
    }
    NEPAL_RETURN_NOT_OK(edge("on_vm", vfc, vm).status());
    Uid host = compute_hosts[rng.Below(compute_hosts.size())];
    NEPAL_RETURN_NOT_OK(edge("on_server", vm, host).status());
    NEPAL_RETURN_NOT_OK(
        edge("uses", vm, images[rng.Below(images.size())]).status());
    NEPAL_RETURN_NOT_OK(
        edge("uses", vm, flavors[rng.Below(flavors.size())]).status());
    int attach = 1 + static_cast<int>(rng.Below(
                         static_cast<uint64_t>(params.vnets_per_vm)));
    for (int a = 0; a < attach; ++a) {
      Uid vnet = net.vnets[rng.Below(net.vnets.size())];
      Value addr = Value::Ip(0x0a000000u |
                             static_cast<uint32_t>(rng.Below(1u << 24)));
      NEPAL_RETURN_NOT_OK(
          edge("virtual_connects", vm, vnet, {{"ip_address", addr}}).status());
      NEPAL_RETURN_NOT_OK(
          edge("virtual_connects", vnet, vm, {{"ip_address", addr}}).status());
    }
    if (rng.Chance(0.5)) {
      // One or two management attachments; two-network members are what
      // multiply VM-to-VM pathways (a -> net1 -> c -> net2 -> b).
      size_t first = rng.Below(mgmt_vnets.size());
      size_t count = rng.Chance(0.4) ? 2 : 1;
      for (size_t k = 0; k < count; ++k) {
        Uid vnet = mgmt_vnets[(first + k) % mgmt_vnets.size()];
        Value addr = Value::Ip(0xac100000u |
                               static_cast<uint32_t>(rng.Below(1u << 16)));
        NEPAL_RETURN_NOT_OK(
            edge("virtual_connects", vm, vnet, {{"ip_address", addr}})
                .status());
        NEPAL_RETURN_NOT_OK(
            edge("virtual_connects", vnet, vm, {{"ip_address", addr}})
                .status());
      }
    }
    // Every container exposes a virtual interface; some get a floating IP.
    char mac[20];
    std::snprintf(mac, sizeof(mac), "02:%02x:%02x:%02x:%02x:%02x",
                  static_cast<unsigned>(rng.Below(256)),
                  static_cast<unsigned>(rng.Below(256)),
                  static_cast<unsigned>(rng.Below(256)),
                  static_cast<unsigned>(rng.Below(256)),
                  static_cast<unsigned>(rng.Below(256)));
    NEPAL_ASSIGN_OR_RETURN(
        Uid vif, node("VirtualInterface", "vif-" + name,
                      {{"mac", Value(std::string(mac))}}));
    NEPAL_RETURN_NOT_OK(edge("attaches", vm, vif).status());
    NEPAL_RETURN_NOT_OK(
        edge("attaches", vif, net.vnets[rng.Below(net.vnets.size())])
            .status());
    if (rng.Chance(0.1)) {
      NEPAL_ASSIGN_OR_RETURN(
          Uid fip,
          node("FloatingIp", "fip-" + name,
               {{"address",
                 Value::Ip(0x87000000u |
                           static_cast<uint32_t>(rng.Below(1u << 24)))}}));
      NEPAL_RETURN_NOT_OK(edge("attaches", fip, vm).status());
    }
    return vm;
  };

  // ---- Service, Logical and Virtualization layers ----
  for (int s = 0; s < params.num_services; ++s) {
    NEPAL_ASSIGN_OR_RETURN(
        Uid svc, node(s % 4 == 0 ? "InfraService" : "CustomerService",
                      "service-" + std::to_string(s),
                      {{"customer", Value("cust-" + std::to_string(s % 7))}}));
    net.services.push_back(svc);
  }
  Uid prev_vnf = kInvalidUid;
  for (int v = 0; v < params.num_vnfs; ++v) {
    const char* cls = kVnfClasses[static_cast<size_t>(v) % 12];
    NEPAL_ASSIGN_OR_RETURN(
        Uid vnf, node(cls, "vnf-" + std::to_string(v),
                      {{"vnf_type", Value(cls)}}));
    net.vnfs.push_back(vnf);
    Uid svc = net.services[static_cast<size_t>(v) % net.services.size()];
    NEPAL_RETURN_NOT_OK(edge("composed_of", svc, vnf).status());
    // Service-level data flow chain.
    if (prev_vnf != kInvalidUid && v % 3 != 0) {
      NEPAL_RETURN_NOT_OK(edge("flow", prev_vnf, vnf).status());
    }
    prev_vnf = vnf;
    for (int f = 0; f < params.vfcs_per_vnf; ++f) {
      const char* vfc_cls = kVfcClasses[rng.Below(10)];
      NEPAL_ASSIGN_OR_RETURN(
          Uid vfc, node(vfc_cls,
                        "vfc-" + std::to_string(v) + "-" + std::to_string(f),
                        {{"role", Value(vfc_cls)}}));
      net.vfcs.push_back(vfc);
      NEPAL_RETURN_NOT_OK(edge("composed_of", vnf, vfc).status());
      int vm_count = 1 + static_cast<int>(rng.Below(
                             static_cast<uint64_t>(params.vms_per_vfc_max)));
      for (int m = 0; m < vm_count; ++m) {
        NEPAL_RETURN_NOT_OK(add_container(vfc, "vm-" + std::to_string(v) +
                                                   "-" + std::to_string(f) +
                                                   "-" + std::to_string(m))
                                .status());
      }
    }
  }

  net.snapshot_time = db.Now();
  net.initial_version_count = db.backend().VersionCount();

  // ---- Churn: replay `history_days` days of updates ----
  std::vector<Uid> scaled_out;  // VMs added by scale events (scale-in pool)
  for (int day = 1; day <= params.history_days; ++day) {
    NEPAL_RETURN_NOT_OK(
        db.SetTime(net.snapshot_time + static_cast<Timestamp>(day) * 86400 *
                                           1000000));
    for (int i = 0; i < params.status_updates_per_day; ++i) {
      Uid vm = net.vms[rng.Below(net.vms.size())];
      const char* status = rng.Chance(0.7) ? "Green"
                           : rng.Chance(0.5) ? "Yellow"
                                             : "Red";
      Status st = db.UpdateElement(vm, {{"status", Value(status)}});
      if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    }
    for (int i = 0; i < params.vm_migrations_per_day; ++i) {
      Uid vm = net.vms[rng.Below(net.vms.size())];
      // Find the current placement edge and move the VM.
      std::vector<Uid> placement;
      db.backend().IncidentEdges(
          vm, storage::Direction::kOut,
          db.schema().FindClass("on_server"), storage::TimeView::Current(),
          [&](const storage::ElementVersion& e) { placement.push_back(e.uid); });
      if (placement.empty()) continue;
      Status st = db.RemoveElement(placement[0]);
      if (!st.ok()) continue;
      Uid host = compute_hosts[rng.Below(compute_hosts.size())];
      NEPAL_RETURN_NOT_OK(edge("on_server", vm, host).status());
    }
    for (int i = 0; i < params.scale_events_per_day; ++i) {
      if (!scaled_out.empty() && rng.Chance(0.4)) {
        // Scale-in: retire a previously added VM (edges cascade).
        Uid vm = scaled_out.back();
        scaled_out.pop_back();
        Status st = db.RemoveElement(vm);
        if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
      } else {
        Uid vfc = net.vfcs[rng.Below(net.vfcs.size())];
        NEPAL_ASSIGN_OR_RETURN(
            Uid vm, add_container(vfc, "vm-scaled-" + std::to_string(day) +
                                           "-" + std::to_string(i)));
        scaled_out.push_back(vm);
      }
    }
  }
  net.end_time = db.Now();
  net.final_version_count = db.backend().VersionCount();
  return net;
}

}  // namespace nepal::netmodel
