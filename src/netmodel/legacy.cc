#include "netmodel/legacy.h"

#include <algorithm>

#include "common/rng.h"
#include "schema/dsl_parser.h"

namespace nepal::netmodel {

std::string LegacyEdgeTypeName(int i) {
  switch (i) {
    case 0:
      return "contains";
    case 1:
      return "service_hop";
    case 2:
      return "monitors";
    default: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "link_type_%02d", i);
      return buf;
    }
  }
}

namespace {

constexpr const char* kLegacyNodeDsl = R"(
node legacy_node : Node {
  type_indicator: string;
  status: string;
}
)";

schema::SchemaPtr ParseOrDie(const std::string& dsl) {
  auto result = schema::ParseSchemaDsl(dsl);
  if (!result.ok()) {
    fprintf(stderr, "legacy schema: %s\n", result.status().ToString().c_str());
    abort();
  }
  return *result;
}

}  // namespace

schema::SchemaPtr LegacySingleClassSchema() {
  std::string dsl = kLegacyNodeDsl;
  dsl += "edge legacy_link : Edge { type_indicator: string; }\n";
  dsl += "allow legacy_link (legacy_node -> legacy_node);\n";
  return ParseOrDie(dsl);
}

schema::SchemaPtr LegacySubclassedSchema() {
  std::string dsl = kLegacyNodeDsl;
  dsl += "edge legacy_link : Edge { type_indicator: string; }\n";
  for (int i = 0; i < kLegacyEdgeTypes; ++i) {
    dsl += "edge " + LegacyEdgeTypeName(i) + " : legacy_link {}\n";
  }
  dsl += "allow legacy_link (legacy_node -> legacy_node);\n";
  return ParseOrDie(dsl);
}

std::string LegacyNetwork::EdgeAtom(const std::string& type) const {
  if (subclassed) return type + "()";
  return "legacy_link(type_indicator='" + type + "')";
}

std::string LegacyNetwork::NodeAtom(const std::string& type) const {
  return "legacy_node(type_indicator='" + type + "')";
}

Result<LegacyNetwork> BuildLegacyNetwork(const LegacyParams& params,
                                         const BackendFactory& factory) {
  LegacyNetwork net;
  net.subclassed = params.subclassed;
  schema::SchemaPtr schema = params.subclassed ? LegacySubclassedSchema()
                                               : LegacySingleClassSchema();
  net.db = std::make_unique<storage::GraphDb>(schema, factory(schema));
  storage::GraphDb& db = *net.db;
  Rng rng(params.seed);

  auto node = [&](const std::string& type,
                  const std::string& name) -> Result<Uid> {
    return db.AddNode("legacy_node", {{"name", Value(name)},
                                      {"type_indicator", Value(type)},
                                      {"status", Value("up")}});
  };
  // The feed carries a type_indicator per edge; under the subclassed load
  // the indicator selects the class, under the single-class load it lands
  // in the field.
  auto edge = [&](int type, Uid s, Uid t) -> Result<Uid> {
    std::string type_name = LegacyEdgeTypeName(type);
    if (params.subclassed) {
      return db.AddEdge(type_name, s, t,
                        {{"type_indicator", Value(type_name)}});
    }
    return db.AddEdge("legacy_link", s, t,
                      {{"type_indicator", Value(type_name)}});
  };

  // ---- Containment hierarchy: device > shelf > card > port ----
  std::vector<Uid> all_nodes;
  std::vector<std::vector<Uid>> flood_chains;  // per device
  for (int d = 0; d < params.num_devices; ++d) {
    NEPAL_ASSIGN_OR_RETURN(Uid device,
                           node("device", "dev-" + std::to_string(d)));
    net.devices.push_back(device);
    all_nodes.push_back(device);
    std::vector<Uid> device_ports;
    std::vector<Uid> flood_chain;  // shelf0, card0 and card0's ports
    for (int s = 0; s < params.shelves_per_device; ++s) {
      NEPAL_ASSIGN_OR_RETURN(
          Uid shelf, node("shelf", "dev-" + std::to_string(d) + "-sh" +
                                       std::to_string(s)));
      all_nodes.push_back(shelf);
      if (s == 0) flood_chain.push_back(shelf);
      NEPAL_RETURN_NOT_OK(edge(0, device, shelf).status());
      for (int c = 0; c < params.cards_per_shelf; ++c) {
        NEPAL_ASSIGN_OR_RETURN(
            Uid card, node("card", "dev-" + std::to_string(d) + "-sh" +
                                       std::to_string(s) + "-c" +
                                       std::to_string(c)));
        all_nodes.push_back(card);
        if (s == 0 && c == 0) flood_chain.push_back(card);
        NEPAL_RETURN_NOT_OK(edge(0, shelf, card).status());
        for (int p = 0; p < params.ports_per_card; ++p) {
          NEPAL_ASSIGN_OR_RETURN(
              Uid port, node("port", "dev-" + std::to_string(d) + "-sh" +
                                         std::to_string(s) + "-c" +
                                         std::to_string(c) + "-p" +
                                         std::to_string(p)));
          all_nodes.push_back(port);
          net.ports.push_back(port);
          device_ports.push_back(port);
          if (s == 0 && c == 0) flood_chain.push_back(port);
          NEPAL_RETURN_NOT_OK(edge(0, card, port).status());
        }
      }
    }
    flood_chains.push_back(std::move(flood_chain));
    // Port groups: an alternative containment path device > group > port
    // (legacy inventories are full of such cross-structures).
    int num_groups = 2;
    for (int g = 0; g < num_groups; ++g) {
      NEPAL_ASSIGN_OR_RETURN(
          Uid group, node("group", "dev-" + std::to_string(d) + "-grp" +
                                       std::to_string(g)));
      all_nodes.push_back(group);
      NEPAL_RETURN_NOT_OK(edge(0, device, group).status());
      for (size_t m = static_cast<size_t>(g); m < device_ports.size();
           m += static_cast<size_t>(num_groups) * 4) {
        NEPAL_RETURN_NOT_OK(edge(0, group, device_ports[m]).status());
      }
    }
  }

  // The port population is partitioned so the two service-path workloads
  // do not pollute each other: "feeder" ports (index % 7 == 3) only carry
  // the converging egress traffic; all other ports carry ordinary chains.
  auto is_feeder = [](size_t port_index) { return port_index % 7 == 3; };
  auto sample_port = [&](bool feeder) {
    while (true) {
      size_t i = rng.Below(net.ports.size());
      if (is_feeder(i) == feeder) return std::make_pair(net.ports[i], i);
    }
  };

  // ---- Forward service chains ----
  for (int d = 0; d < params.num_devices; ++d) {
    if (!rng.Chance(params.chain_density)) continue;
    size_t head_idx = static_cast<size_t>(d) * 32 % net.ports.size();
    if (is_feeder(head_idx)) ++head_idx;
    Uid head = net.ports[head_idx];
    net.chain_heads.push_back(head);
    std::vector<Uid> level = {head};
    for (int hop = 0; hop < params.chain_length; ++hop) {
      std::vector<Uid> next;
      for (Uid from : level) {
        for (int b = 0; b < params.chain_branching; ++b) {
          Uid to = sample_port(false).first;
          if (to == from) continue;
          NEPAL_RETURN_NOT_OK(edge(1, from, to).status());
          next.push_back(to);
        }
      }
      level = std::move(next);
    }
  }

  // ---- Converging trees into egress ports (reverse-path blowup) ----
  for (int e = 0; e < params.num_egress_ports; ++e) {
    size_t egress_idx = (static_cast<size_t>(e) * 977) % net.ports.size();
    if (is_feeder(egress_idx)) ++egress_idx;
    Uid egress = net.ports[egress_idx];
    net.egress_ports.push_back(egress);
    std::vector<Uid> level = {egress};
    for (int hop = 0; hop < params.chain_length; ++hop) {
      std::vector<Uid> next;
      for (Uid to : level) {
        for (int b = 0; b < params.reverse_in_branching; ++b) {
          Uid from = sample_port(true).first;
          if (from == to) continue;
          NEPAL_RETURN_NOT_OK(edge(1, from, to).status());
          next.push_back(from);
        }
      }
      level = std::move(next);
      // Cap the frontier so the generator stays linear in the parameter.
      if (level.size() > 4096) level.resize(4096);
    }
  }

  // ---- Hub devices flooded with irrelevant monitoring edges ----
  std::vector<Uid> monitors;
  for (int m = 0; m < 64; ++m) {
    NEPAL_ASSIGN_OR_RETURN(Uid mon, node("monitor", "mon-" +
                                                        std::to_string(m)));
    monitors.push_back(mon);
  }
  int num_hubs = std::max(1, static_cast<int>(params.hub_fraction *
                                              params.num_devices));
  for (int h = 0; h < num_hubs; ++h) {
    size_t dev_idx = (static_cast<size_t>(h) * 131) %
                     static_cast<size_t>(params.num_devices);
    net.hub_devices.push_back(net.devices[dev_idx]);
    // Flood the device's first containment chain (shelf 0, card 0 and its
    // ports) with monitoring edges of scattered irrelevant types: a
    // bottom-up traversal from those ports fetches the junk at every hop.
    const std::vector<Uid>& chain = flood_chains[dev_idx];
    int per_node = params.hub_monitor_edges /
                   static_cast<int>(chain.size());
    for (Uid target : chain) {
      for (int j = 0; j < per_node; ++j) {
        int type = 3 + static_cast<int>(rng.Below(kLegacyEdgeTypes - 3));
        NEPAL_RETURN_NOT_OK(
            edge(type, monitors[rng.Below(monitors.size())], target).status());
      }
    }
  }

  net.snapshot_time = db.Now();
  net.initial_version_count = db.backend().VersionCount();

  // ---- Churn ----
  size_t elements = db.node_count() + db.edge_count();
  auto updates_per_day = static_cast<size_t>(
      params.daily_update_fraction * static_cast<double>(elements));
  for (int day = 1; day <= params.history_days; ++day) {
    NEPAL_RETURN_NOT_OK(
        db.SetTime(net.snapshot_time + static_cast<Timestamp>(day) * 86400 *
                                           1000000));
    for (size_t i = 0; i < updates_per_day; ++i) {
      Uid uid = all_nodes[rng.Below(all_nodes.size())];
      const char* status = rng.Chance(0.8) ? "up" : "degraded";
      Status st = db.UpdateElement(uid, {{"status", Value(status)}});
      if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    }
  }
  net.end_time = db.Now();
  net.final_version_count = db.backend().VersionCount();
  return net;
}

}  // namespace nepal::netmodel
