// The legacy network topology (paper Section 6, Table 2).
//
// The paper's second data set is a flat legacy inventory delivered as nodes
// and edges with type_indicator values: one node class and one edge class
// at first load, later reloaded with 66 edge subclasses (one per
// type_indicator), which makes the bottom-up query interactive.
//
// Shape (scaled by `num_devices`):
//  - a containment hierarchy device > shelf > card > port connected by
//    downward `contains`-style edges (vertical queries, length 3),
//  - forward service chains of port -> port `service_hop` edges with
//    branching ~2 over 4 levels (the forward service-path query),
//  - a small set of egress ports into which many chains converge (the
//    reverse-path query explodes backwards from these),
//  - hub devices carrying large numbers of monitoring edges of irrelevant
//    types — the cause of the paper's bimodal bottom-up latencies on the
//    single-class load,
//  - 60 days of churn for the +16% history.

#ifndef NEPAL_NETMODEL_LEGACY_H_
#define NEPAL_NETMODEL_LEGACY_H_

#include <memory>
#include <string>
#include <vector>

#include "netmodel/virtualized.h"
#include "storage/graphdb.h"

namespace nepal::netmodel {

/// Number of distinct edge type_indicator values (and subclasses).
inline constexpr int kLegacyEdgeTypes = 66;

/// The i-th edge type name, e.g. "contains", "service_hop", "mgmt_link_07".
std::string LegacyEdgeTypeName(int i);

/// Single-class schema: legacy_node / legacy_link with type_indicator
/// fields (how the legacy feed was first loaded).
schema::SchemaPtr LegacySingleClassSchema();

/// Subclassed schema: 66 edge classes, one per type_indicator value.
schema::SchemaPtr LegacySubclassedSchema();

struct LegacyParams {
  uint64_t seed = 7;
  /// Scale knob: the paper's data set (~1.6M nodes / 7.1M edges)
  /// corresponds to roughly 11,000 devices.
  int num_devices = 1400;
  int shelves_per_device = 2;
  int cards_per_shelf = 4;
  int ports_per_card = 4;

  /// Service chains: length (hops) and out-branching per level.
  int chain_length = 4;
  int chain_branching = 2;
  /// Fraction of devices whose first port starts a service chain.
  double chain_density = 0.25;
  /// Number of egress ports that chains converge into; reverse-path
  /// queries anchored here explode backwards.
  int num_egress_ports = 4;
  /// In-branching per level feeding each egress port (controls the
  /// reverse-path blowup: ~in_branching^chain_length paths).
  int reverse_in_branching = 10;

  /// Hub devices: fraction of devices flooded with irrelevant monitoring
  /// edges (the paper's slow bottom-up samples), and how many each.
  double hub_fraction = 0.01;
  int hub_monitor_edges = 24000;

  /// Whether to load with the 66 edge subclasses (Section 6 reload) or the
  /// original single edge class + type_indicator predicate.
  bool subclassed = false;

  int history_days = 60;
  /// Daily updates as a fraction of elements, calibrated so 60 days yield
  /// roughly +16% versions.
  double daily_update_fraction = 0.0027;
};

struct LegacyNetwork {
  std::unique_ptr<storage::GraphDb> db;
  bool subclassed = false;

  std::vector<Uid> devices;
  std::vector<Uid> ports;
  /// Ports that start a service chain (forward query anchors).
  std::vector<Uid> chain_heads;
  /// Egress ports (reverse query anchors).
  std::vector<Uid> egress_ports;
  /// Devices flooded with monitoring edges.
  std::vector<Uid> hub_devices;

  Timestamp snapshot_time = 0;
  Timestamp end_time = 0;
  size_t initial_version_count = 0;
  size_t final_version_count = 0;

  /// Class or predicate atom for an edge type, depending on the load mode:
  /// subclassed -> "contains()", single-class ->
  /// "legacy_link(type_indicator='contains')".
  std::string EdgeAtom(const std::string& type) const;
  /// Node atom for a node type (node classes stay single in both modes).
  std::string NodeAtom(const std::string& type) const;
};

Result<LegacyNetwork> BuildLegacyNetwork(const LegacyParams& params,
                                         const BackendFactory& factory);

}  // namespace nepal::netmodel

#endif  // NEPAL_NETMODEL_LEGACY_H_
