#include "netmodel/feed.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace nepal::netmodel {

std::string FeedStats::ToString() const {
  return std::to_string(nodes) + " nodes, " + std::to_string(edges) +
         " edges, " + std::to_string(updates) + " updates, " +
         std::to_string(deletes) + " deletes, " +
         std::to_string(clock_moves) + " clock moves";
}

namespace {

/// Splits a directive line into whitespace-separated words, keeping quoted
/// strings (with their quotes) intact.
Result<std::vector<std::string>> Tokenize(const std::string& line,
                                          int line_no) {
  std::vector<std::string> words;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    size_t start = i;
    bool in_quote = false;
    while (i < line.size() &&
           (in_quote || !std::isspace(static_cast<unsigned char>(line[i])))) {
      if (line[i] == '\'') in_quote = !in_quote;
      ++i;
    }
    if (in_quote) {
      return Status::ParseError("feed line " + std::to_string(line_no) +
                                ": unterminated string literal");
    }
    words.push_back(line.substr(start, i - start));
  }
  return words;
}

Result<Value> ParseLiteral(const std::string& text, int line_no) {
  if (text.empty()) {
    return Status::ParseError("feed line " + std::to_string(line_no) +
                              ": empty literal");
  }
  if (text.front() == '\'') {
    if (text.size() < 2 || text.back() != '\'') {
      return Status::ParseError("feed line " + std::to_string(line_no) +
                                ": malformed string literal " + text);
    }
    return Value(text.substr(1, text.size() - 2));
  }
  if (text == "true") return Value(true);
  if (text == "false") return Value(false);
  try {
    if (text.find('.') != std::string::npos) {
      size_t used = 0;
      double d = std::stod(text, &used);
      if (used == text.size()) return Value(d);
    } else {
      size_t used = 0;
      int64_t v = std::stoll(text, &used, 10);
      if (used == text.size()) return Value(v);
    }
  } catch (...) {
    // fall through to the error below
  }
  return Status::ParseError("feed line " + std::to_string(line_no) +
                            ": cannot parse literal '" + text + "'");
}

/// Parses trailing `field=literal` assignments.
Result<schema::FieldValues> ParseAssignments(
    const std::vector<std::string>& words, size_t from, int line_no) {
  schema::FieldValues fields;
  for (size_t i = from; i < words.size(); ++i) {
    size_t eq = words[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::ParseError("feed line " + std::to_string(line_no) +
                                ": expected field=literal, got '" + words[i] +
                                "'");
    }
    NEPAL_ASSIGN_OR_RETURN(Value v,
                           ParseLiteral(words[i].substr(eq + 1), line_no));
    fields.emplace_back(words[i].substr(0, eq), std::move(v));
  }
  return fields;
}

}  // namespace

Uid FeedLoader::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidUid : it->second;
}

Result<FeedStats> FeedLoader::Load(const std::string& text) {
  FeedStats stats;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  auto err = [&line_no](const std::string& msg) {
    return Status::InvalidArgument("feed line " + std::to_string(line_no) +
                                   ": " + msg);
  };
  while (std::getline(stream, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    NEPAL_ASSIGN_OR_RETURN(std::vector<std::string> words,
                           Tokenize(line, line_no));
    if (words.empty()) continue;
    const std::string& directive = words[0];

    if (directive == "at") {
      std::string ts_text;
      for (size_t i = 1; i < words.size(); ++i) {
        if (i > 1) ts_text += " ";
        ts_text += words[i];
      }
      NEPAL_ASSIGN_OR_RETURN(Timestamp ts, ParseTimestamp(ts_text));
      NEPAL_RETURN_NOT_OK(db_->SetTime(ts));
      ++stats.clock_moves;
      continue;
    }
    if (directive == "node") {
      if (words.size() < 3) return err("node needs <class> <name>");
      const std::string& name = words[2];
      if (by_name_.count(name)) {
        return err("name '" + name + "' already in use");
      }
      NEPAL_ASSIGN_OR_RETURN(schema::FieldValues fields,
                             ParseAssignments(words, 3, line_no));
      fields.emplace_back("name", Value(name));
      NEPAL_ASSIGN_OR_RETURN(Uid uid, db_->AddNode(words[1], fields));
      by_name_[name] = uid;
      ++stats.nodes;
      continue;
    }
    if (directive == "edge") {
      if (words.size() < 6 || words[4] != "->") {
        return err("edge needs <class> <name> <source> -> <target>");
      }
      const std::string& name = words[2];
      if (by_name_.count(name)) {
        return err("name '" + name + "' already in use");
      }
      auto src = by_name_.find(words[3]);
      auto tgt = by_name_.find(words[5]);
      if (src == by_name_.end() || tgt == by_name_.end()) {
        return err("unknown endpoint '" +
                   (src == by_name_.end() ? words[3] : words[5]) + "'");
      }
      NEPAL_ASSIGN_OR_RETURN(schema::FieldValues fields,
                             ParseAssignments(words, 6, line_no));
      fields.emplace_back("name", Value(name));
      NEPAL_ASSIGN_OR_RETURN(
          Uid uid, db_->AddEdge(words[1], src->second, tgt->second, fields));
      by_name_[name] = uid;
      ++stats.edges;
      continue;
    }
    if (directive == "update") {
      if (words.size() < 3) return err("update needs <name> field=literal");
      auto it = by_name_.find(words[1]);
      if (it == by_name_.end()) return err("unknown name '" + words[1] + "'");
      NEPAL_ASSIGN_OR_RETURN(schema::FieldValues fields,
                             ParseAssignments(words, 2, line_no));
      NEPAL_RETURN_NOT_OK(db_->UpdateElement(it->second, fields));
      ++stats.updates;
      continue;
    }
    if (directive == "delete") {
      if (words.size() != 2) return err("delete needs exactly <name>");
      auto it = by_name_.find(words[1]);
      if (it == by_name_.end()) return err("unknown name '" + words[1] + "'");
      // Cascaded edge deletions leave dangling name entries; those names
      // simply become unknown to later directives.
      NEPAL_RETURN_NOT_OK(db_->RemoveElement(it->second));
      by_name_.erase(it);
      ++stats.deletes;
      continue;
    }
    return err("unknown directive '" + directive + "'");
  }
  return stats;
}

Result<FeedStats> FeedLoader::LoadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open feed file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Load(buffer.str());
}

std::string ExportFeed(const storage::GraphDb& db, size_t* skipped) {
  std::string out =
      "# exported Nepal inventory feed\n"
      "# limitation: this is the CURRENT snapshot only. The feed format\n"
      "# cannot express version history, so AsOf/Range queries against a\n"
      "# reloaded feed see a single epoch. Use the durability subsystem\n"
      "# (WAL + checkpoints, src/persist) to preserve temporal history.\n";
  size_t skipped_count = 0;
  auto render_fields = [](const storage::ElementVersion& v) {
    std::string text;
    for (size_t i = 0; i < v.fields.size(); ++i) {
      const schema::FieldDef& def = v.cls->fields()[i];
      if (def.name == "name" || v.fields[i].is_null()) continue;
      switch (v.fields[i].kind()) {
        case ValueKind::kInt:
        case ValueKind::kDouble:
        case ValueKind::kBool:
        case ValueKind::kString:
          text += " " + def.name + "=" + v.fields[i].ToString();
          break;
        default:
          break;  // structured values are not expressible in the feed
      }
    }
    return text;
  };
  auto name_of = [&](const storage::ElementVersion& v) -> std::string {
    int idx = v.cls->FieldIndex("name");
    if (idx < 0 || v.fields[static_cast<size_t>(idx)].is_null()) return "";
    return v.fields[static_cast<size_t>(idx)].AsString();
  };
  std::unordered_map<Uid, std::string> names;
  storage::ScanSpec nodes;
  nodes.cls = db.schema().node_root();
  db.backend().Scan(nodes, storage::TimeView::Current(),
                    [&](const storage::ElementVersion& v) {
                      std::string name = name_of(v);
                      if (name.empty()) {
                        ++skipped_count;
                        return;
                      }
                      names[v.uid] = name;
                      out += "node " + v.cls->name() + " " + name +
                             render_fields(v) + "\n";
                    });
  storage::ScanSpec edges;
  edges.cls = db.schema().edge_root();
  db.backend().Scan(edges, storage::TimeView::Current(),
                    [&](const storage::ElementVersion& v) {
                      std::string name = name_of(v);
                      auto src = names.find(v.source);
                      auto tgt = names.find(v.target);
                      if (name.empty() || src == names.end() ||
                          tgt == names.end()) {
                        ++skipped_count;
                        return;
                      }
                      out += "edge " + v.cls->name() + " " + name + " " +
                             src->second + " -> " + tgt->second +
                             render_fields(v) + "\n";
                    });
  if (skipped != nullptr) *skipped = skipped_count;
  return out;
}

}  // namespace nepal::netmodel
