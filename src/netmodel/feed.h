// The inventory feed format: a replayable, line-oriented update stream.
//
// Real deployments feed Nepal from orchestrators and legacy inventories
// (Section 3.1); this loader implements a textual form of such a stream so
// inventories can be captured in files, replayed into any backend, and
// shipped as test fixtures. Elements are identified by their `name` field
// (the uid mapping is owned by the loader). One directive per line:
//
//   # comment
//   at 2017-02-15 10:00:00            -- advance the transaction clock
//   node <class> <name> [field=literal ...]
//   edge <class> <name> <source-name> -> <target-name> [field=literal ...]
//   update <name> field=literal [...]
//   delete <name>
//
// Literals use NQL syntax: 42, 2.5, 'text', true/false. Structured values
// are not expressible in the feed (use the programmatic API).

#ifndef NEPAL_NETMODEL_FEED_H_
#define NEPAL_NETMODEL_FEED_H_

#include <string>
#include <unordered_map>

#include "storage/graphdb.h"

namespace nepal::netmodel {

struct FeedStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t updates = 0;
  size_t deletes = 0;
  size_t clock_moves = 0;

  std::string ToString() const;
};

class FeedLoader {
 public:
  /// `db` must outlive the loader.
  explicit FeedLoader(storage::GraphDb* db) : db_(db) {}

  /// Replays feed text. Errors carry the line number. Partially applied
  /// feeds leave the database with every directive before the error.
  Result<FeedStats> Load(const std::string& text);

  /// Reads and replays a feed file.
  Result<FeedStats> LoadFile(const std::string& path);

  /// uid previously assigned to a feed name, or kInvalidUid.
  Uid Lookup(const std::string& name) const;

 private:
  storage::GraphDb* db_;
  std::unordered_map<std::string, Uid> by_name_;
};

/// Serializes the current snapshot of `db` back into feed format (nodes
/// first, then edges), suitable for re-loading. Elements without a unique
/// name are skipped and counted in `*skipped` (if non-null).
std::string ExportFeed(const storage::GraphDb& db, size_t* skipped = nullptr);

}  // namespace nepal::netmodel

#endif  // NEPAL_NETMODEL_FEED_H_
