// The virtualized network service model (paper Figure 2 / Section 6).
//
// Builds the four-layer topology — Service, Logical, Virtualization,
// Physical — with the class-hierarchy richness the paper reports for its
// virtualized data set (54 node classes, 12 edge classes; ~2,000 nodes and
// ~11,000 edges at default parameters), plus a churn process that replays a
// 60-day update history so the full history is a few percent larger than
// the current snapshot.

#ifndef NEPAL_NETMODEL_VIRTUALIZED_H_
#define NEPAL_NETMODEL_VIRTUALIZED_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/graphdb.h"

namespace nepal::netmodel {

/// The 54-node-class / 12-edge-class layered schema.
schema::SchemaPtr VirtualizedSchema();

struct VirtualizedParams {
  uint64_t seed = 42;

  // Service + Logical layers.
  int num_services = 10;
  int num_vnfs = 33;       // the paper's data set has 33 distinct VNFs
  int vfcs_per_vnf = 8;
  // Virtualization layer.
  int vms_per_vfc_max = 2;  // 1..max VMs (VFC components scale out)
  int num_vnets = 90;
  int num_vrouters = 18;
  int vnets_per_vm = 2;
  // Physical layer.
  int num_hosts = 650;
  int hosts_per_rack = 8;
  int num_agg_switches = 10;
  int num_routers = 6;
  int num_datacenters = 3;

  // Churn (history generation).
  int history_days = 60;
  int status_updates_per_day = 4;
  int vm_migrations_per_day = 1;
  int scale_events_per_day = 1;  // VFC scale-out/in (VM add/remove)
};

struct VirtualizedNetwork {
  std::unique_ptr<storage::GraphDb> db;

  std::vector<Uid> services;
  std::vector<Uid> vnfs;
  std::vector<Uid> vfcs;
  std::vector<Uid> vms;
  std::vector<Uid> hosts;
  std::vector<Uid> tor_switches;
  std::vector<Uid> vnets;

  /// Clock value right after the initial load (history starts here).
  Timestamp snapshot_time = 0;
  /// Clock value after churn replay.
  Timestamp end_time = 0;

  size_t initial_version_count = 0;
  size_t final_version_count = 0;
};

/// Creates an empty StorageBackend for a given schema; the generators call
/// it so the backend and the GraphDb share one Schema instance.
using BackendFactory = std::function<std::unique_ptr<storage::StorageBackend>(
    schema::SchemaPtr)>;

/// Builds the network on a fresh backend from `factory`. When
/// params.history_days > 0, churn is replayed after the initial load.
Result<VirtualizedNetwork> BuildVirtualizedNetwork(
    const VirtualizedParams& params, const BackendFactory& factory);

}  // namespace nepal::netmodel

#endif  // NEPAL_NETMODEL_VIRTUALIZED_H_
