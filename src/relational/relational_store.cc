#include "relational/relational_store.h"

#include <algorithm>

#include "relational/sql_executor.h"

namespace nepal::relational {

using storage::Direction;
using storage::ElementSink;
using storage::ElementVersion;
using storage::ScanSpec;
using storage::TimeView;

RelationalStore::RelationalStore(schema::SchemaPtr schema,
                                 RelationalStoreOptions options)
    : StorageBackend(schema.get()),
      schema_(std::move(schema)),
      options_(std::move(options)) {
  current_.resize(schema_->classes().size());
  history_.resize(schema_->classes().size());
  for (const schema::ClassDef* cls : schema_->classes()) {
    current_[static_cast<size_t>(cls->order())] =
        std::make_unique<Table>(cls, /*is_history=*/false,
                                options_.indexed_fields);
    history_[static_cast<size_t>(cls->order())] =
        std::make_unique<Table>(cls, /*is_history=*/true,
                                options_.indexed_fields);
  }
}

Status RelationalStore::InsertCommon(Uid uid, ElementVersion v, Timestamp t) {
  auto [it, inserted] = uid_registry_.emplace(uid, v.cls);
  if (!inserted) {
    return Status::AlreadyExists("uid " + std::to_string(uid) +
                                 " already registered");
  }
  v.valid = Interval{t, kTimestampMax};
  v.birth_epoch = write_epoch_;
  v.close_epoch = storage::kEpochMax;
  const schema::ClassDef* cls = v.cls;
  Uid source = v.source;
  Uid target = v.target;
  Status st = CurrentTable(v.cls).Insert(std::move(v));
  if (!st.ok()) {
    uid_registry_.erase(uid);
    return st;
  }
  CurrentTable(cls).ForEachById(
      uid, [&](const ElementVersion& cur) { stats_.OnInsert(cls, cur.fields); });
  if (cls->is_edge()) {
    stats_.OnEdgeLinked(cls, source, RegisteredClassOf(source), target,
                        RegisteredClassOf(target));
  }
  return st;
}

Status RelationalStore::InsertNode(Uid uid, const schema::ClassDef* cls,
                                   std::vector<Value> row, Timestamp t) {
  ElementVersion v;
  v.uid = uid;
  v.cls = cls;
  v.fields = std::move(row);
  return InsertCommon(uid, std::move(v), t);
}

Status RelationalStore::InsertEdge(Uid uid, const schema::ClassDef* cls,
                                   std::vector<Value> row, Uid source,
                                   Uid target, Timestamp t) {
  ElementVersion v;
  v.uid = uid;
  v.cls = cls;
  v.fields = std::move(row);
  v.source = source;
  v.target = target;
  return InsertCommon(uid, std::move(v), t);
}

Status RelationalStore::Update(Uid uid,
                               const std::vector<std::pair<int, Value>>&
                                   changes,
                               Timestamp t) {
  auto it = uid_registry_.find(uid);
  if (it == uid_registry_.end()) {
    return Status::NotFound("uid " + std::to_string(uid) + " not registered");
  }
  Table& table = CurrentTable(it->second);
  NEPAL_ASSIGN_OR_RETURN(ElementVersion old_row, table.Remove(uid));
  ElementVersion new_row = old_row;
  for (const auto& [idx, value] : changes) {
    new_row.fields[static_cast<size_t>(idx)] = value;
  }
  new_row.valid = Interval{t, kTimestampMax};
  new_row.birth_epoch = write_epoch_;
  new_row.close_epoch = storage::kEpochMax;
  old_row.valid.end = t;
  old_row.close_epoch = write_epoch_;
  stats_.OnUpdate(it->second, old_row.fields, new_row.fields);
  // A version opened and replaced at the same instant never existed.
  if (!old_row.valid.empty()) {
    NEPAL_RETURN_NOT_OK(HistoryTable(it->second).Insert(std::move(old_row)));
  }
  return table.Insert(std::move(new_row));
}

Status RelationalStore::Delete(Uid uid, Timestamp t) {
  auto it = uid_registry_.find(uid);
  if (it == uid_registry_.end()) {
    return Status::NotFound("uid " + std::to_string(uid) + " not registered");
  }
  NEPAL_ASSIGN_OR_RETURN(ElementVersion old_row,
                         CurrentTable(it->second).Remove(uid));
  old_row.valid.end = t;
  old_row.close_epoch = write_epoch_;
  stats_.OnRemove(it->second, old_row.fields);
  if (old_row.is_edge()) {
    stats_.OnEdgeUnlinked(it->second, old_row.source,
                          RegisteredClassOf(old_row.source), old_row.target,
                          RegisteredClassOf(old_row.target));
  }
  if (old_row.valid.empty()) return Status::OK();
  return HistoryTable(it->second).Insert(std::move(old_row));
}

Status RelationalStore::RestoreChain(Uid uid,
                                     std::vector<ElementVersion> chain) {
  if (chain.empty()) {
    return Status::Corruption("checkpoint chain for uid " +
                              std::to_string(uid) + " is empty");
  }
  const schema::ClassDef* cls = chain.front().cls;
  auto [it, inserted] = uid_registry_.emplace(uid, cls);
  if (!inserted) {
    return Status::Corruption("checkpoint restores uid " +
                              std::to_string(uid) + " twice");
  }
  for (ElementVersion& v : chain) {
    if (v.uid != uid || v.cls != cls) {
      return Status::Corruption("inconsistent checkpoint chain for uid " +
                                std::to_string(uid));
    }
    // Restored versions predate every snapshot epoch.
    v.birth_epoch = 0;
    v.close_epoch = v.is_current() ? storage::kEpochMax : 0;
    pending_restore_.push_back(std::move(v));
  }
  return Status::OK();
}

// Re-derives the row order live execution produced. Current tables hold
// rows in the order their open version was created (an UPDATE retires the
// old row and appends the replacement); history tables hold rows in
// retirement order. Both are recovered by sorting the staged versions on
// the corresponding event timestamp, with uid breaking ties the way
// monotone allocation ordered same-instant operations.
Status RelationalStore::FinishRestore() {
  std::vector<ElementVersion> staged;
  staged.swap(pending_restore_);
  std::stable_sort(staged.begin(), staged.end(),
                   [](const ElementVersion& a, const ElementVersion& b) {
                     const Timestamp ea =
                         a.is_current() ? a.valid.start : a.valid.end;
                     const Timestamp eb =
                         b.is_current() ? b.valid.start : b.valid.end;
                     if (ea != eb) return ea < eb;
                     if (a.uid != b.uid) return a.uid < b.uid;
                     return a.valid.start < b.valid.start;
                   });
  for (ElementVersion& v : staged) {
    Table& table = v.is_current() ? CurrentTable(v.cls) : HistoryTable(v.cls);
    NEPAL_RETURN_NOT_OK(table.Insert(std::move(v)));
  }
  return Status::OK();
}

std::vector<const Table*> RelationalStore::SubtreeTables(
    const schema::ClassDef* cls, bool history) const {
  std::vector<const Table*> tables;
  const auto& side = history ? history_ : current_;
  for (int order = cls->order(); order < cls->subtree_end(); ++order) {
    tables.push_back(side[static_cast<size_t>(order)].get());
  }
  return tables;
}

void RelationalStore::Scan(const ScanSpec& spec, const TimeView& view,
                           const ElementSink& sink) const {
  if (spec.uid) {
    Get(*spec.uid, view, [&](const ElementVersion& v) {
      if (spec.Matches(v)) sink(v);
    });
    return;
  }
  auto emit = [&](const ElementVersion& v) {
    if (spec.Matches(v)) view.Emit(v, sink);
  };
  auto scan_table = [&](const Table& table) {
    if (spec.eq) {
      const std::string& field =
          spec.cls->fields()[static_cast<size_t>(spec.eq->first)].name;
      if (table.ForEachByField(field, spec.eq->second, emit)) return;
    }
    table.ScanAll(emit);
  };
  for (const Table* table : SubtreeTables(spec.cls, /*history=*/false)) {
    scan_table(*table);
  }
  if (view.includes_closed()) {
    for (const Table* table : SubtreeTables(spec.cls, /*history=*/true)) {
      scan_table(*table);
    }
  }
}

void RelationalStore::Get(Uid uid, const TimeView& view,
                          const ElementSink& sink) const {
  auto it = uid_registry_.find(uid);
  if (it == uid_registry_.end()) return;
  auto emit = [&](const ElementVersion& v) { view.Emit(v, sink); };
  current_[static_cast<size_t>(it->second->order())]->ForEachById(uid, emit);
  if (view.includes_closed()) {
    history_[static_cast<size_t>(it->second->order())]->ForEachById(uid, emit);
  }
}

void RelationalStore::IncidentEdges(Uid node, Direction dir,
                                    const schema::ClassDef* edge_cls,
                                    const TimeView& view,
                                    const ElementSink& sink) const {
  if (edge_cls == nullptr) edge_cls = schema_->edge_root();
  auto emit = [&](const ElementVersion& v) { view.Emit(v, sink); };
  auto probe = [&](const Table& table) {
    if (dir == Direction::kOut || dir == Direction::kBoth) {
      table.ForEachBySource(node, emit);
    }
    if (dir == Direction::kIn || dir == Direction::kBoth) {
      table.ForEachByTarget(node, emit);
    }
  };
  for (const Table* table : SubtreeTables(edge_cls, /*history=*/false)) {
    probe(*table);
  }
  if (view.includes_closed()) {
    for (const Table* table : SubtreeTables(edge_cls, /*history=*/true)) {
      probe(*table);
    }
  }
}

bool RelationalStore::Exists(Uid uid, const TimeView& view) const {
  bool found = false;
  Get(uid, view, [&](const ElementVersion&) { found = true; });
  return found;
}

size_t RelationalStore::CountClass(const schema::ClassDef* cls) const {
  size_t count = 0;
  for (const Table* table : SubtreeTables(cls, /*history=*/false)) {
    count += table->row_count();
  }
  return count;
}

size_t RelationalStore::MemoryUsage() const {
  size_t bytes = sizeof(RelationalStore);
  for (const auto& table : current_) bytes += table->MemoryUsage();
  for (const auto& table : history_) bytes += table->MemoryUsage();
  bytes += uid_registry_.size() * (sizeof(Uid) + sizeof(void*)) * 2;
  return bytes;
}

size_t RelationalStore::VersionCount() const {
  size_t count = 0;
  for (const auto& table : current_) count += table->row_count();
  for (const auto& table : history_) count += table->row_count();
  return count;
}

std::unique_ptr<storage::PathOperatorExecutor> RelationalStore::CreateExecutor()
    const {
  return std::make_unique<SqlBulkExecutor>(this);
}

std::string RelationalStore::ToCreateSql() const {
  std::string sql;
  for (const schema::ClassDef* cls : schema_->classes()) {
    sql += current_[static_cast<size_t>(cls->order())]->ToCreateSql();
    sql += "\n";
    sql += history_[static_cast<size_t>(cls->order())]->ToCreateSql();
    sql += "\n";
  }
  return sql;
}

}  // namespace nepal::relational
