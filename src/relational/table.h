// Table: one relation of the mini relational engine.
//
// The relational backend materializes the paper's Postgres layout: one
// current table per node/edge class plus one __history table (the
// temporal_tables pattern), with class inheritance realized as
// INHERITS-style subtree scans. Edge tables carry source_id_/target_id_
// columns with hash indexes, which the bulk-join Extend operators probe.

#ifndef NEPAL_RELATIONAL_TABLE_H_
#define NEPAL_RELATIONAL_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/element.h"

namespace nepal::relational {

class Table {
 public:
  Table(const schema::ClassDef* cls, bool is_history,
        const std::vector<std::string>& indexed_fields);

  const schema::ClassDef* cls() const { return cls_; }
  bool is_history() const { return is_history_; }
  /// SQL-level name: "VM" or "VM__history".
  const std::string& sql_name() const { return sql_name_; }

  /// Number of live rows.
  size_t row_count() const { return live_count_; }

  /// Appends a row. Current tables require an open validity interval;
  /// history tables a closed one.
  Status Insert(storage::ElementVersion row);

  /// Tombstones the row with this uid (current tables only) and returns it.
  Result<storage::ElementVersion> Remove(Uid uid);

  /// Emits every live row (no predicate; callers filter).
  void ScanAll(const storage::ElementSink& sink) const;

  /// Current tables: the row with `uid`, or nullptr.
  const storage::ElementVersion* FindById(Uid uid) const;
  /// History tables: every version of `uid`.
  void ForEachById(Uid uid, const storage::ElementSink& sink) const;

  void ForEachBySource(Uid source, const storage::ElementSink& sink) const;
  void ForEachByTarget(Uid target, const storage::ElementSink& sink) const;

  /// Probes the hash index on `field` (if built) for rows with `value`.
  /// Returns false if the field is not indexed on this table.
  bool ForEachByField(const std::string& field, const Value& value,
                      const storage::ElementSink& sink) const;
  bool HasFieldIndex(const std::string& field) const {
    return field_indexes_.count(field) > 0;
  }
  /// Index bucket size (statistics for anchor costing); 0 if not indexed.
  size_t IndexBucketSize(const std::string& field, const Value& value) const;

  size_t MemoryUsage() const;

  /// "CREATE TABLE VM (...) INHERITS(Container);" — documentation rendering
  /// matching the paper's schema-generation examples.
  std::string ToCreateSql() const;

 private:
  void IndexRow(size_t pos);

  const schema::ClassDef* cls_;
  bool is_history_;
  std::string sql_name_;
  std::vector<storage::ElementVersion> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::unordered_map<Uid, size_t> by_id_;                 // current tables
  std::unordered_map<Uid, std::vector<size_t>> by_id_multi_;  // history
  std::unordered_map<Uid, std::vector<size_t>> by_source_;
  std::unordered_map<Uid, std::vector<size_t>> by_target_;
  std::unordered_map<std::string,
                     std::unordered_map<Value, std::vector<size_t>, ValueHash>>
      field_indexes_;
};

}  // namespace nepal::relational

#endif  // NEPAL_RELATIONAL_TABLE_H_
