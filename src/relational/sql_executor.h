// SqlBulkExecutor: the relational operator executor.
//
// Evaluates Select/Extend as bulk joins over the per-class tables, the way
// the paper's PostgreSQL target does: every operator materializes a TEMP
// table of paths (uid_list, concept_list, curr_uid) and the Extend operators
// are navigation joins against the edge/node tables of the atom's class
// subtree. When tracing is enabled each operator renders the equivalent SQL
// (matching the generated-query examples of the paper's Section 5.2).
//
// Join strategy per table: when the stored table is smaller than the
// frontier, the executor scans the table and probes a hash built over the
// frontier's curr_uid column; otherwise it probes the table's
// source_id_/target_id_ hash index once per distinct frontier uid.

#ifndef NEPAL_RELATIONAL_SQL_EXECUTOR_H_
#define NEPAL_RELATIONAL_SQL_EXECUTOR_H_

#include <atomic>
#include <unordered_map>
#include <vector>

#include "relational/relational_store.h"
#include "storage/pathset.h"

namespace nepal::relational {

class SqlBulkExecutor : public storage::PathOperatorExecutor {
 public:
  explicit SqlBulkExecutor(const RelationalStore* store) : store_(store) {}

  storage::PathSet Select(const storage::CompiledAtom& atom,
                          const storage::TimeView& view) override;
  storage::PathSet SelectSeeds(const std::vector<Uid>& nodes,
                               const storage::TimeView& view) override;
  storage::PathSet ExtendAtom(const storage::PathSet& frontier,
                              const storage::CompiledAtom& atom,
                              storage::Direction dir,
                              const storage::TimeView& view) override;
  storage::PathSet FinalizeTail(const storage::PathSet& frontier,
                                const storage::TimeView& view) override;

 private:
  using FrontierIndex = std::unordered_map<Uid, std::vector<size_t>>;

  /// Groups state indexes by frontier uid.
  static FrontierIndex BuildFrontierIndex(const storage::PathSet& frontier);

  /// Splits off the states whose frontier node is not yet materialized and
  /// appends its version(s), so all returned states are in-path.
  storage::PathSet MaterializeFrontiers(const storage::PathSet& frontier,
                                        const storage::TimeView& view,
                                        const storage::CompiledAtom* node_atom);

  /// Bulk join of in-path states against the edge tables of `atom`'s
  /// subtree. Emits post-edge states.
  void EdgeJoin(const storage::PathSet& frontier,
                const storage::CompiledAtom& atom, storage::Direction dir,
                const storage::TimeView& view, storage::PathSet* out);

  // Atomic: operator calls run concurrently under the parallel executor and
  // every one draws a TEMP-table id, trace on or off.
  int NextTempId() { return temp_counter_.fetch_add(1) + 1; }
  std::string ViewSql(const storage::TimeView& view) const;

  const RelationalStore* store_;
  std::atomic<int> temp_counter_{0};
};

}  // namespace nepal::relational

#endif  // NEPAL_RELATIONAL_SQL_EXECUTOR_H_
