#include "relational/sql_executor.h"

#include "storage/traverser_executor.h"  // TryAppendElement

namespace nepal::relational {

using storage::CompiledAtom;
using storage::Direction;
using storage::ElementVersion;
using storage::PathSet;
using storage::PathState;
using storage::TimeView;
using storage::TryAppendElement;

namespace {

std::string TableRef(const Table& table, const TimeView& view) {
  // Historical reads go through the current UNION history view.
  return view.needs_history() ? table.cls()->name() + "__historical"
                              : table.sql_name();
}

}  // namespace

std::string SqlBulkExecutor::ViewSql(const TimeView& view) const {
  switch (view.kind()) {
    case TimeView::Kind::kCurrent:
      return "";
    case TimeView::Kind::kAsOf:
      return " AND H.sys_period @> '" + FormatTimestamp(view.range().start) +
             "'::timestamptz";
    case TimeView::Kind::kRange:
      return " AND H.sys_period && tstzrange('" +
             FormatTimestamp(view.range().start) + "', '" +
             FormatTimestamp(view.range().end) + "')";
  }
  return "";
}

SqlBulkExecutor::FrontierIndex SqlBulkExecutor::BuildFrontierIndex(
    const PathSet& frontier) {
  FrontierIndex index;
  index.reserve(frontier.size());
  for (size_t i = 0; i < frontier.size(); ++i) {
    index[frontier[i].frontier].push_back(i);
  }
  return index;
}

PathSet SqlBulkExecutor::Select(const CompiledAtom& atom,
                                const TimeView& view) {
  int temp = NextTempId();
  storage::ScanSpec spec = atom.ToScanSpec();
  if (trace_enabled_) {
    std::string sql = "create TEMP table tmp_select_" + std::to_string(temp) +
                      " as (select ARRAY[H.id_] as uid_list, ARRAY[cast('" +
                      atom.cls->name() +
                      "' as text)] as concept_list, H.id_ as curr_uid from ";
    std::string preds;
    for (const storage::FieldCondition& cond : atom.conditions) {
      preds += " AND H." + cond.ToString();
    }
    bool first = true;
    std::string body;
    for (const Table* table :
         store_->SubtreeTables(atom.cls, /*history=*/false)) {
      if (!first) body += " UNION ALL select ... from ";
      body += TableRef(*table, view);
      first = false;
    }
    Trace(sql + body + " H where true" + preds + ViewSql(view) + ");");
  }
  PathSet out;
  store_->Scan(spec, view, [&](const ElementVersion& v) {
    PathState state;
    state.uids.push_back(v.uid);
    state.concepts.push_back(v.cls);
    state.valid = v.valid;
    if (v.is_edge()) {
      state.frontier = v.target;
      state.frontier_in_path = false;
      state.head_frontier = v.source;
      state.head_in_path = false;
    } else {
      state.frontier = v.uid;
      state.frontier_in_path = true;
      state.head_frontier = v.uid;
      state.head_in_path = true;
    }
    out.push_back(std::move(state));
  });
  return out;
}

PathSet SqlBulkExecutor::SelectSeeds(const std::vector<Uid>& nodes,
                                     const TimeView& view) {
  (void)view;
  Trace("create TEMP table tmp_seeds as (select unnest(...) as curr_uid); -- " +
        std::to_string(nodes.size()) + " imported anchor uids");
  PathSet out;
  out.reserve(nodes.size());
  for (Uid uid : nodes) {
    PathState state;
    state.frontier = uid;
    state.frontier_in_path = false;
    state.head_frontier = uid;
    state.head_in_path = false;
    out.push_back(std::move(state));
  }
  return out;
}

PathSet SqlBulkExecutor::MaterializeFrontiers(const PathSet& frontier,
                                              const TimeView& view,
                                              const CompiledAtom* node_atom) {
  PathSet out;
  out.reserve(frontier.size());
  for (const PathState& state : frontier) {
    if (state.frontier_in_path) {
      if (node_atom == nullptr) out.push_back(state);
      continue;
    }
    store_->Get(state.frontier, view, [&](const ElementVersion& v) {
      if (node_atom != nullptr && !node_atom->Matches(v)) return;
      PathState next;
      if (!TryAppendElement(state, v, &next)) return;
      next.frontier = v.uid;
      next.frontier_in_path = true;
      out.push_back(std::move(next));
    });
  }
  return out;
}

void SqlBulkExecutor::EdgeJoin(const PathSet& frontier,
                               const CompiledAtom& atom, Direction dir,
                               const TimeView& view, PathSet* out) {
  FrontierIndex index = BuildFrontierIndex(frontier);
  const bool forward = dir == Direction::kOut;
  int temp = NextTempId();

  auto join_row = [&](const ElementVersion& raw) {
    if (!atom.Matches(raw)) return;
    // Emit patches epoch-open intervals so TryAppendElement's running
    // interval intersection sees what a locked read at the snapshot would.
    view.Emit(raw, [&](const ElementVersion& e) {
      Uid join_key = forward ? e.source : e.target;
      auto it = index.find(join_key);
      if (it == index.end()) return;
      for (size_t state_idx : it->second) {
        const PathState& state = frontier[state_idx];
        Uid far = forward ? e.target : e.source;
        if (state.Contains(far)) continue;
        PathState next;
        if (!TryAppendElement(state, e, &next)) continue;
        next.frontier = far;
        next.frontier_in_path = false;
        out->push_back(std::move(next));
      }
    });
  };

  std::vector<const Table*> tables =
      store_->SubtreeTables(atom.cls, /*history=*/false);
  if (view.includes_closed()) {
    auto hist = store_->SubtreeTables(atom.cls, /*history=*/true);
    tables.insert(tables.end(), hist.begin(), hist.end());
  }
  for (const Table* table : tables) {
    const char* strategy;
    if (table->row_count() <= frontier.size()) {
      // Hash join: build over the frontier, probe with the stored rows.
      strategy = "hash join (build: frontier)";
      table->ScanAll(join_row);
    } else {
      // Index join: probe the source/target hash index per frontier uid.
      strategy = "index join (probe: edge index)";
      for (const auto& [uid, states] : index) {
        if (forward) {
          table->ForEachBySource(uid, join_row);
        } else {
          table->ForEachByTarget(uid, join_row);
        }
      }
    }
    if (trace_enabled_) {
      std::string join_col = forward ? "H.source_id_" : "H.target_id_";
      std::string far_col = forward ? "H.target_id_" : "H.source_id_";
      Trace("create TEMP table tmp_extend_" + std::to_string(temp) +
            " as (select T.uid_list || ARRAY[H.id_] as uid_list, "
            "T.concept_list || ARRAY[cast('" +
            table->cls()->name() + "' as text)] as concept_list, " + far_col +
            " as curr_uid from " + TableRef(*table, view) + " H, tmp_" +
            std::to_string(temp - 1) + " T where " + join_col +
            " = T.curr_uid AND NOT H.id_ = ANY(T.uid_list) AND NOT " +
            far_col + " = ANY(T.uid_list)" + ViewSql(view) + ");  -- " +
            strategy + ", " + std::to_string(table->row_count()) +
            " stored rows vs " + std::to_string(frontier.size()) +
            " frontier paths");
    }
  }
}

PathSet SqlBulkExecutor::ExtendAtom(const PathSet& frontier,
                                    const CompiledAtom& atom, Direction dir,
                                    const TimeView& view) {
  PathSet out;
  if (atom.is_edge()) {
    // Promote post-edge states by materializing the implicit node, then run
    // one bulk edge join for the whole frontier. (MaterializeFrontiers
    // passes in-path states through unchanged.)
    PathSet in_path = MaterializeFrontiers(frontier, view, nullptr);
    EdgeJoin(in_path, atom, dir, view, &out);
    return out;
  }

  // Node atom. Post-edge states: the frontier node itself must match.
  PathSet matched = MaterializeFrontiers(frontier, view, &atom);
  out.insert(out.end(), matched.begin(), matched.end());

  // In-path states: implicit edge join, then node join on the far endpoint.
  PathSet in_path;
  for (const PathState& state : frontier) {
    if (state.frontier_in_path) in_path.push_back(state);
  }
  if (in_path.empty()) return out;
  CompiledAtom any_edge;
  any_edge.cls = store_->schema().edge_root();
  PathSet after_edge;
  EdgeJoin(in_path, any_edge, dir, view, &after_edge);
  // Node join: probe the uid registry / id index of the atom's subtree.
  PathSet node_joined = MaterializeFrontiers(after_edge, view, &atom);
  if (trace_enabled_) {
    Trace("-- node join: " + std::to_string(after_edge.size()) +
          " candidate paths joined against " + atom.ToString() + " -> " +
          std::to_string(node_joined.size()) + " paths");
  }
  out.insert(out.end(), node_joined.begin(), node_joined.end());
  return out;
}

PathSet SqlBulkExecutor::FinalizeTail(const PathSet& frontier,
                                      const TimeView& view) {
  return MaterializeFrontiers(frontier, view, nullptr);
}

}  // namespace nepal::relational
