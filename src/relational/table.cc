#include "relational/table.h"

namespace nepal::relational {

using storage::ElementSink;
using storage::ElementVersion;

Table::Table(const schema::ClassDef* cls, bool is_history,
             const std::vector<std::string>& indexed_fields)
    : cls_(cls),
      is_history_(is_history),
      sql_name_(is_history ? cls->name() + "__history" : cls->name()) {
  for (const std::string& field : indexed_fields) {
    if (cls->FieldIndex(field) >= 0) {
      field_indexes_[field];  // create the (empty) index
    }
  }
}

void Table::IndexRow(size_t pos) {
  const ElementVersion& row = rows_[pos];
  if (is_history_) {
    by_id_multi_[row.uid].push_back(pos);
  } else {
    by_id_[row.uid] = pos;
  }
  if (row.is_edge()) {
    by_source_[row.source].push_back(pos);
    by_target_[row.target].push_back(pos);
  }
  for (auto& [field, index] : field_indexes_) {
    int idx = cls_->FieldIndex(field);
    const Value& v = row.fields[static_cast<size_t>(idx)];
    if (!v.is_null()) index[v].push_back(pos);
  }
}

Status Table::Insert(ElementVersion row) {
  if (row.cls != cls_) {
    return Status::Internal("row of class " + row.cls->name() +
                            " inserted into table " + sql_name_);
  }
  if (is_history_ == row.is_current()) {
    return Status::Internal(std::string("validity interval is ") +
                            (row.is_current() ? "open" : "closed") +
                            " for table " + sql_name_);
  }
  if (!is_history_ && by_id_.count(row.uid)) {
    return Status::AlreadyExists("duplicate uid " + std::to_string(row.uid) +
                                 " in table " + sql_name_);
  }
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  IndexRow(rows_.size() - 1);
  return Status::OK();
}

Result<ElementVersion> Table::Remove(Uid uid) {
  if (is_history_) {
    return Status::Internal("Remove on history table " + sql_name_);
  }
  auto it = by_id_.find(uid);
  if (it == by_id_.end() || !live_[it->second]) {
    return Status::NotFound("uid " + std::to_string(uid) + " not in table " +
                            sql_name_);
  }
  size_t pos = it->second;
  live_[pos] = false;
  --live_count_;
  by_id_.erase(it);
  // Positional entries in the secondary indexes are left in place;
  // readers re-validate liveness and key equality on probe.
  return rows_[pos];
}

void Table::ScanAll(const ElementSink& sink) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (live_[i]) sink(rows_[i]);
  }
}

const ElementVersion* Table::FindById(Uid uid) const {
  auto it = by_id_.find(uid);
  if (it == by_id_.end() || !live_[it->second]) return nullptr;
  return &rows_[it->second];
}

void Table::ForEachById(Uid uid, const ElementSink& sink) const {
  if (!is_history_) {
    if (const ElementVersion* row = FindById(uid)) sink(*row);
    return;
  }
  auto it = by_id_multi_.find(uid);
  if (it == by_id_multi_.end()) return;
  for (size_t pos : it->second) {
    if (live_[pos]) sink(rows_[pos]);
  }
}

void Table::ForEachBySource(Uid source, const ElementSink& sink) const {
  auto it = by_source_.find(source);
  if (it == by_source_.end()) return;
  for (size_t pos : it->second) {
    if (live_[pos] && rows_[pos].source == source) sink(rows_[pos]);
  }
}

void Table::ForEachByTarget(Uid target, const ElementSink& sink) const {
  auto it = by_target_.find(target);
  if (it == by_target_.end()) return;
  for (size_t pos : it->second) {
    if (live_[pos] && rows_[pos].target == target) sink(rows_[pos]);
  }
}

bool Table::ForEachByField(const std::string& field, const Value& value,
                           const storage::ElementSink& sink) const {
  auto field_it = field_indexes_.find(field);
  if (field_it == field_indexes_.end()) return false;
  auto val_it = field_it->second.find(value);
  if (val_it == field_it->second.end()) return true;
  int idx = cls_->FieldIndex(field);
  for (size_t pos : val_it->second) {
    if (live_[pos] && rows_[pos].fields[static_cast<size_t>(idx)] == value) {
      sink(rows_[pos]);
    }
  }
  return true;
}

size_t Table::IndexBucketSize(const std::string& field,
                              const Value& value) const {
  auto field_it = field_indexes_.find(field);
  if (field_it == field_indexes_.end()) return 0;
  auto val_it = field_it->second.find(value);
  return val_it == field_it->second.end() ? 0 : val_it->second.size();
}

size_t Table::MemoryUsage() const {
  size_t bytes = sizeof(Table);
  for (const ElementVersion& row : rows_) {
    bytes += sizeof(ElementVersion) + sizeof(bool);
    for (const Value& v : row.fields) bytes += v.MemoryUsage();
  }
  bytes += by_id_.size() * (sizeof(Uid) + sizeof(size_t) * 2);
  for (const auto& [k, v] : by_id_multi_) {
    bytes += sizeof(Uid) + v.capacity() * sizeof(size_t);
  }
  for (const auto& [k, v] : by_source_) {
    bytes += sizeof(Uid) + v.capacity() * sizeof(size_t);
  }
  for (const auto& [k, v] : by_target_) {
    bytes += sizeof(Uid) + v.capacity() * sizeof(size_t);
  }
  return bytes;
}

std::string Table::ToCreateSql() const {
  std::string sql = "CREATE TABLE " + sql_name_ + " (id_ bigint";
  if (cls_->is_edge()) sql += ", source_id_ bigint, target_id_ bigint";
  for (size_t i = cls_->inherited_field_count(); i < cls_->fields().size();
       ++i) {
    const schema::FieldDef& f = cls_->fields()[i];
    sql += ", " + f.name + " " + f.type.ToString();
  }
  sql += ", sys_period tstzrange)";
  if (!cls_->is_root()) {
    sql += " INHERITS(" + cls_->parent()->name() +
           (is_history_ ? "__history)" : ")");
  }
  sql += ";";
  return sql;
}

}  // namespace nepal::relational
