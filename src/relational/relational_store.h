// RelationalStore: the relational execution backend.
//
// Mirrors the paper's PostgreSQL implementation:
//  - one table per node/edge class, with INHERITS-style subtree scans
//    (a scan "as VM" unions the VM table with every descendant table),
//  - a current/history table pair per class (the temporal_tables pattern);
//    the union is the __historical view used by AsOf/Range reads,
//  - a uid registry relation guaranteeing global id uniqueness,
//  - hash indexes on id_, source_id_, target_id_ and configured fields.
//
// The per-class partitioning is the load-bearing design for the paper's
// Section 6 subclassing experiment: an edge atom restricted to a class
// subtree probes only that subtree's tables, automatically eliminating
// irrelevant edges from navigation joins.

#ifndef NEPAL_RELATIONAL_RELATIONAL_STORE_H_
#define NEPAL_RELATIONAL_RELATIONAL_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/table.h"
#include "schema/schema.h"
#include "storage/backend.h"

namespace nepal::relational {

struct RelationalStoreOptions {
  std::vector<std::string> indexed_fields = {"name"};
};

class RelationalStore final : public storage::StorageBackend {
 public:
  explicit RelationalStore(
      schema::SchemaPtr schema,
      RelationalStoreOptions options = RelationalStoreOptions());

  std::string name() const override { return "relational"; }

  Status InsertNode(Uid uid, const schema::ClassDef* cls,
                    std::vector<Value> row, Timestamp t) override;
  Status InsertEdge(Uid uid, const schema::ClassDef* cls,
                    std::vector<Value> row, Uid source, Uid target,
                    Timestamp t) override;
  Status Update(Uid uid, const std::vector<std::pair<int, Value>>& changes,
                Timestamp t) override;
  Status Delete(Uid uid, Timestamp t) override;
  Status RestoreChain(Uid uid,
                      std::vector<storage::ElementVersion> chain) override;
  Status FinishRestore() override;

  void Scan(const storage::ScanSpec& spec, const storage::TimeView& view,
            const storage::ElementSink& sink) const override;
  void Get(Uid uid, const storage::TimeView& view,
           const storage::ElementSink& sink) const override;
  void IncidentEdges(Uid node, storage::Direction dir,
                     const schema::ClassDef* edge_cls,
                     const storage::TimeView& view,
                     const storage::ElementSink& sink) const override;
  bool Exists(Uid uid, const storage::TimeView& view) const override;

  size_t CountClass(const schema::ClassDef* cls) const override;
  size_t MemoryUsage() const override;
  size_t VersionCount() const override;
  std::unique_ptr<storage::PathOperatorExecutor> CreateExecutor()
      const override;

  const schema::Schema& schema() const { return *schema_; }
  const RelationalStoreOptions& options() const { return options_; }

  /// Tables of a class subtree (current or history side).
  std::vector<const Table*> SubtreeTables(const schema::ClassDef* cls,
                                          bool history) const;

  /// Full DDL of the database ("CREATE TABLE ... INHERITS(...)" per class),
  /// matching the paper's Section 5.2 examples.
  std::string ToCreateSql() const;

 private:
  Table& CurrentTable(const schema::ClassDef* cls) {
    return *current_[static_cast<size_t>(cls->order())];
  }
  Table& HistoryTable(const schema::ClassDef* cls) {
    return *history_[static_cast<size_t>(cls->order())];
  }
  Status InsertCommon(Uid uid, storage::ElementVersion v, Timestamp t);
  const schema::ClassDef* RegisteredClassOf(Uid uid) const {
    auto it = uid_registry_.find(uid);
    return it == uid_registry_.end() ? nullptr : it->second;
  }

  schema::SchemaPtr schema_;
  RelationalStoreOptions options_;
  std::vector<std::unique_ptr<Table>> current_;  // by ClassDef::order()
  std::vector<std::unique_ptr<Table>> history_;
  /// The uid-uniqueness relation: uid -> class (which tables hold it).
  std::unordered_map<Uid, const schema::ClassDef*> uid_registry_;
  /// Versions staged by RestoreChain; FinishRestore inserts them in the
  /// order live execution would have appended them.
  std::vector<storage::ElementVersion> pending_restore_;
};

}  // namespace nepal::relational

#endif  // NEPAL_RELATIONAL_RELATIONAL_STORE_H_
