// ViewFootprint: the dependency set of a materialized pathway view.
//
// The maintenance loop sees every WAL record of the database and must
// decide, per view, whether the touched element can possibly appear in (or
// create) a cached pathway. The footprint is computed once at registration
// from the view's compiled MatchPlan: the classes of every CompiledAtom in
// the anchor set and the physical programs (union branches, loop bodies and
// NFA transitions included), plus two conservative flags for the elements
// pathway semantics materializes *implicitly*:
//
//  - consecutive node atoms traverse an implicit, unconstrained edge that
//    is recorded in the path — any edge class is then relevant;
//  - an RPE that starts/ends with an edge atom (or chains two edge atoms)
//    materializes implicit endpoint/between nodes — any node class is then
//    relevant.
//
// Class relevance is subclass-aware in both directions: a write of class C
// affects an atom over class A when either subtree contains the other
// (scanning "as A" reads C rows; an atom over the subclass C never sees
// rows of a proper ancestor, but an atom over an ancestor sees C).
//
// `max_atoms` bounds the number of atoms any matching fragment consumes
// (rpe MaxAtoms), which bounds how far — in elements, implicit ones
// included — a cached path can stretch from any of its members. The repair
// pass uses `radius()` to find anchor elements whose pathway could reach a
// touched element. Unbounded repetitions set `unbounded`; the catalog falls
// back to a full rebuild for relevant writes on such views.

#ifndef NEPAL_VIEWS_FOOTPRINT_H_
#define NEPAL_VIEWS_FOOTPRINT_H_

#include <string>
#include <vector>

#include "nepal/plan.h"
#include "nepal/rpe.h"

namespace nepal::views {

struct ViewFootprint {
  /// Deduplicated classes of every atom in the compiled plan.
  std::vector<const schema::ClassDef*> classes;
  /// True when a path may record an implicit (unconstrained) edge: writes
  /// of any edge class are relevant.
  bool implicit_edges = false;
  /// True when a path may materialize an implicit endpoint/between node:
  /// writes of any node class are relevant.
  bool implicit_nodes = false;
  /// MaxAtoms of the view's RPE; kUnboundedRep when open-ended.
  int max_atoms = 0;
  /// Any atom sits under an unbounded repetition — incremental repair has
  /// no hop bound, so relevant writes trigger a full rebuild instead.
  bool unbounded = false;

  /// Can a write touching an element of class `cls` change the view?
  bool Relevant(const schema::ClassDef* cls) const;

  /// Element-hop bound between a touched element and the anchor element of
  /// any cached path containing it (implicit elements counted). Meaningless
  /// when `unbounded`.
  int radius() const;

  /// Diagnostic rendering for `\views`, e.g. "{VM, HostedOn, Host} +implicit-edges r=9".
  std::string ToString() const;
};

/// Computes the footprint of a registered view from its compiled plan and
/// resolved RPE (the RPE supplies the implicit-element analysis and the
/// atom-count bound; the plan supplies the surviving atom classes after
/// dead-branch pruning).
ViewFootprint CollectFootprint(const nql::MatchPlan& plan,
                               const nql::RpeNode& resolved_rpe);

}  // namespace nepal::views

#endif  // NEPAL_VIEWS_FOOTPRINT_H_
