// ViewCatalog: materialized pathway views with WAL-driven incremental
// maintenance.
//
// A view registers a pathway query — anchor + pathway expression + temporal
// mode (Current or AsOf t) — under a name. Registration compiles the RPE to
// a MatchPlan once, flags the view for an initial full build, and the
// catalog's maintenance thread (one per catalog, a persist::DrainThread
// tailing DurableStore::Subscribe) builds it pinned to a commit epoch via
// snapshot reads (nql::LockedBackend / LockedExecutor — brief shared locks
// per operator call, never blocking writers for the whole build).
//
// From then on every committed WAL record drives maintenance. Frames are
// grouped by the commit epoch they carry (one ApplyBatch = one epoch = one
// group) and each group is, per view, one of:
//
//  - skipped: the touched class is outside the view's dependency footprint
//    (footprint.h) — the freshness epoch still advances, since the cached
//    rows provably equal cold evaluation at the new epoch;
//  - incrementally repaired: the touched elements' cached rows are dropped
//    and recomputed by re-running the view's physical programs seeded at
//    every anchor element within footprint radius, pinned to the group's
//    epoch. The cache is bucketed by (anchored-plan index, anchor element),
//    so a repair replaces exactly the buckets the write can have changed;
//  - a flagged full rebuild: SetTime records and writes relevant to a view
//    with an unbounded repetition (no finite repair radius).
//
// Serving: the catalog implements nql::PathwayViewProvider. Serve(name) and
// Match(db, canonical rpe, as_of) return an immutable snapshot of the
// cached pathway set — deduplicated, canonical order — plus its freshness
// epoch; the engine answers the query from it pinned to that epoch,
// byte-identical to cold evaluation at the same epoch.
//
// Metrics: nepal.views.registered / repairs / rebuilds / skipped_records /
// served (counters & gauges), nepal.views.staleness_epochs (gauge: largest
// commit-epoch lag over registered views), nepal.views.repair_ns
// (histogram). Repairs start an obs trace ("view.repair") when sampling is
// armed.

#ifndef NEPAL_VIEWS_VIEW_CATALOG_H_
#define NEPAL_VIEWS_VIEW_CATALOG_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "nepal/plan.h"
#include "nepal/rpe.h"
#include "nepal/view_provider.h"
#include "persist/drain_thread.h"
#include "persist/durable_store.h"
#include "views/footprint.h"

namespace nepal::views {

/// One row of `\views` / List().
struct ViewInfo {
  std::string name;
  std::string rpe;   // canonical rendering (the Match key)
  std::string mode;  // "current" or "asof <t>"
  std::string footprint;
  uint64_t fresh_epoch = 0;
  /// Commit epochs the cache lags the database (0 = fully fresh).
  uint64_t staleness = 0;
  uint64_t repairs = 0;
  uint64_t rebuilds = 0;
  uint64_t skipped_records = 0;
  size_t paths = 0;  // cached pathway count
  bool rebuild_pending = false;
};

class ViewCatalog final : public nql::PathwayViewProvider {
 public:
  /// Subscribes to `store`'s WAL and starts the maintenance thread. `plan`
  /// configures view compilation (loop strategy, parallelism is forced to 1
  /// for repairs — they run on the maintenance thread).
  static Result<std::unique_ptr<ViewCatalog>> Open(
      persist::DurableStore* store, nql::PlanOptions plan = {});

  ~ViewCatalog() override;

  /// Registers `name` over the store's database. `rpe` is normalized and
  /// compiled here; `as_of` unset registers a Current view. Blocks until
  /// the initial build is complete (the view is servable on return).
  Status CreateView(const std::string& name, nql::RpeNode rpe,
                    std::optional<Timestamp> as_of = std::nullopt);
  Status DropView(const std::string& name);

  std::vector<ViewInfo> List() const;

  /// Blocks until `name`'s freshness epoch reaches `epoch` (tests, and the
  /// shell's synchronous `\views` staleness demo).
  Status WaitUntilFresh(const std::string& name, uint64_t epoch,
                        std::chrono::milliseconds timeout);

  // ---- nql::PathwayViewProvider ----
  std::optional<nql::ServedView> Match(
      const storage::GraphDb* db, const std::string& canonical_rpe,
      const std::optional<Timestamp>& as_of) const override;
  std::optional<nql::ServedView> Serve(const std::string& name) const override;

 private:
  /// Cache bucket key: (anchored-plan index, anchor element uid). A repair
  /// recomputes whole buckets, so every cached path must be attributable to
  /// the anchor element whose Select seeded it.
  using BucketKey = std::pair<size_t, Uid>;

  struct View {
    std::string name;
    std::string canonical;  // Normalize(rpe).ToString()
    std::optional<Timestamp> as_of;
    nql::RpeNode resolved;  // resolved copy (plan recompilation not needed)
    nql::MatchPlan plan;
    ViewFootprint footprint;

    // Cache state. Only the maintenance thread writes; readers (Serve,
    // List) take `mu` for consistent snapshots.
    mutable std::mutex mu;
    std::map<BucketKey, storage::PathSet> buckets;
    /// Element uid -> buckets whose cached paths contain it.
    std::map<Uid, std::set<BucketKey>> index;
    uint64_t fresh_epoch = 0;  // 0 = initial build not done yet
    bool rebuild_pending = true;
    /// Lazily (re)materialized canonical snapshot of all buckets.
    mutable std::shared_ptr<const storage::PathSet> snapshot;
    uint64_t repairs = 0;
    uint64_t rebuilds = 0;
    uint64_t skipped_records = 0;
  };

  ViewCatalog(persist::DurableStore* store, nql::PlanOptions plan);

  void MaintenanceLoop(const std::atomic<bool>& stop);
  /// Applies one same-epoch frame group to every registered view.
  void ApplyGroup(const std::vector<persist::WalRecord>& records,
                  uint64_t epoch);
  /// Full build at the current commit epoch. Caller does NOT hold view->mu.
  void Rebuild(View* view);
  /// Incremental repair of `view` to `epoch` for touched elements `uids`.
  void Repair(View* view, const std::vector<Uid>& uids, uint64_t epoch);
  /// Recomputes bucket (k, anchor_uid) pinned to `view_time`; an empty
  /// result means the bucket has no rows and should be erased. Reads only
  /// the immutable plan, so the caller must NOT hold view->mu — evaluation
  /// contends with writers on the database lock, and holding the view
  /// mutex through it would stall serving for the whole repair. `exec` is
  /// a snapshot (LockedBackend) executor.
  storage::PathSet RecomputeBucket(const View& view, const BucketKey& key,
                                   const storage::TimeView& view_time,
                                   storage::PathOperatorExecutor& exec);
  /// Anchor elements within footprint radius of `uid` at `view_time`, as
  /// bucket keys (undirected BFS over the element graph). Appends to `out`.
  void AnchorsNear(const View& view, Uid uid,
                   const storage::TimeView& view_time,
                   const storage::StorageBackend& backend,
                   std::set<BucketKey>* out) const;
  /// The class of element `uid` as of `epoch` (whole-history probe, so a
  /// just-removed element still resolves); nullptr when unknown.
  const schema::ClassDef* ClassOf(Uid uid, uint64_t epoch) const;
  /// View's base TimeView (Current or AsOf) pinned to `epoch`.
  static storage::TimeView PinnedView(const View& view, uint64_t epoch);
  /// Rebuilds `view->index` from `view->buckets`. Caller holds view->mu.
  static void ReindexLocked(View* view);
  /// Canonical snapshot of the current buckets. Caller holds view->mu.
  static std::shared_ptr<const storage::PathSet> SnapshotLocked(
      const View& view);
  void UpdateGauges() const;

  persist::DurableStore* store_;
  storage::GraphDb* db_;
  nql::PlanOptions plan_;
  std::shared_ptr<persist::WalSubscription> sub_;

  mutable std::mutex mu_;  // guards views_ (map shape, not View internals)
  mutable std::condition_variable fresh_cv_;
  std::map<std::string, std::shared_ptr<View>> views_;

  persist::DrainThread drain_;
};

}  // namespace nepal::views

#endif  // NEPAL_VIEWS_VIEW_CATALOG_H_
