#include "views/view_catalog.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "nepal/executor.h"
#include "nepal/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/wal_format.h"

namespace nepal::views {

namespace {

/// Runs one anchored plan from already-selected seed states: suffix
/// forwards, finalize, reverse, prefix backwards, finalize, reverse — the
/// same pipeline cold evaluation applies per anchor, so a bucket's rows
/// are exactly the cold rows whose anchor element seeded it.
storage::PathSet RunAnchoredFrom(const nql::AnchoredPlan& plan,
                                 storage::PathSet seeds,
                                 const storage::TimeView& view,
                                 storage::PathOperatorExecutor& exec) {
  storage::PathSet cur = nql::RunProgram(exec, plan.suffix, std::move(seeds),
                                         storage::Direction::kOut, view);
  cur = exec.FinalizeTail(cur, view);
  storage::PathSet rev;
  rev.reserve(cur.size());
  for (storage::PathState& s : cur) rev.push_back(s.Reversed());
  rev = nql::RunProgram(exec, plan.reversed_prefix, std::move(rev),
                        storage::Direction::kIn, view);
  rev = exec.FinalizeTail(rev, view);
  storage::PathSet out;
  out.reserve(rev.size());
  for (storage::PathState& s : rev) out.push_back(s.Reversed());
  return out;
}

obs::Counter* RepairsCounter() {
  return obs::MetricsRegistry::Global().GetCounter("nepal.views.repairs");
}
obs::Counter* RebuildsCounter() {
  return obs::MetricsRegistry::Global().GetCounter("nepal.views.rebuilds");
}
obs::Counter* SkippedCounter() {
  return obs::MetricsRegistry::Global().GetCounter(
      "nepal.views.skipped_records");
}
obs::Histogram* RepairHistogram() {
  return obs::MetricsRegistry::Global().GetHistogram(
      "nepal.views.repair_ns", obs::DefaultLatencyBucketsNs());
}

}  // namespace

ViewCatalog::ViewCatalog(persist::DurableStore* store, nql::PlanOptions plan)
    : store_(store), db_(&store->db()), plan_(plan) {}

Result<std::unique_ptr<ViewCatalog>> ViewCatalog::Open(
    persist::DurableStore* store, nql::PlanOptions plan) {
  // Repairs run serially on the maintenance thread; parallel shard merges
  // would only add canonicalization passes the snapshot already does.
  plan.parallelism = 1;
  auto catalog =
      std::unique_ptr<ViewCatalog>(new ViewCatalog(store, plan));
  NEPAL_ASSIGN_OR_RETURN(catalog->sub_, store->Subscribe());
  ViewCatalog* c = catalog.get();
  catalog->drain_.Start(
      [c](const std::atomic<bool>& stop) { c->MaintenanceLoop(stop); },
      [c] {
        std::shared_ptr<persist::WalSubscription> sub;
        {
          std::lock_guard<std::mutex> lock(c->mu_);
          sub = c->sub_;
        }
        if (sub != nullptr) sub->Cancel();
      });
  return catalog;
}

ViewCatalog::~ViewCatalog() { drain_.Stop(); }

Status ViewCatalog::CreateView(const std::string& name, nql::RpeNode rpe,
                               std::optional<Timestamp> as_of) {
  if (name.empty()) {
    return Status::InvalidArgument("view name must not be empty");
  }
  auto view = std::make_shared<View>();
  view->name = name;
  view->as_of = as_of;
  rpe = nql::Normalize(std::move(rpe));
  view->canonical = rpe.ToString();
  view->resolved = std::move(rpe);
  NEPAL_RETURN_NOT_OK(
      nql::ResolveRpe(db_->schema(), plan_.max_repetition, &view->resolved));
  const storage::TimeView base = as_of ? storage::TimeView::AsOf(*as_of)
                                       : storage::TimeView::Current();
  nql::LockedBackend backend(db_);
  NEPAL_ASSIGN_OR_RETURN(view->plan,
                         nql::PlanMatch(view->resolved, backend, plan_, base));
  view->footprint = CollectFootprint(view->plan, view->resolved);
  // The view enters the catalog flagged for its initial build; the
  // maintenance thread builds it at an epoch >= this capture, so waiting
  // for `reg_epoch` waits exactly for "servable".
  const uint64_t reg_epoch = db_->commit_epoch();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (views_.count(name) > 0) {
      return Status::AlreadyExists("view " + name + " already exists");
    }
    views_[name] = view;
  }
  UpdateGauges();
  return WaitUntilFresh(name, reg_epoch, std::chrono::milliseconds(60000));
}

Status ViewCatalog::DropView(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (views_.erase(name) == 0) {
      return Status::NotFound("view " + name + " is not registered");
    }
  }
  UpdateGauges();
  fresh_cv_.notify_all();
  return Status::OK();
}

std::vector<ViewInfo> ViewCatalog::List() const {
  const uint64_t commit = db_->commit_epoch();
  std::vector<ViewInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, view] : views_) {
    std::lock_guard<std::mutex> vlock(view->mu);
    ViewInfo info;
    info.name = name;
    info.rpe = view->canonical;
    info.mode = view->as_of ? "asof " + std::to_string(*view->as_of)
                            : "current";
    info.footprint = view->footprint.ToString();
    info.fresh_epoch = view->fresh_epoch;
    info.staleness =
        commit > view->fresh_epoch ? commit - view->fresh_epoch : 0;
    info.repairs = view->repairs;
    info.rebuilds = view->rebuilds;
    info.skipped_records = view->skipped_records;
    if (view->snapshot == nullptr) view->snapshot = SnapshotLocked(*view);
    info.paths = view->snapshot->size();
    info.rebuild_pending = view->rebuild_pending;
    out.push_back(std::move(info));
  }
  return out;
}

Status ViewCatalog::WaitUntilFresh(const std::string& name, uint64_t epoch,
                                   std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = views_.find(name);
    if (it == views_.end()) {
      return Status::NotFound("view " + name + " is not registered");
    }
    {
      std::lock_guard<std::mutex> vlock(it->second->mu);
      if (it->second->fresh_epoch >= epoch) return Status::OK();
    }
    if (fresh_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::Unavailable("view " + name +
                                 " did not reach epoch " +
                                 std::to_string(epoch) + " in time");
    }
  }
}

std::optional<nql::ServedView> ViewCatalog::Match(
    const storage::GraphDb* db, const std::string& canonical_rpe,
    const std::optional<Timestamp>& as_of) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, view] : views_) {
    if (db != db_ || view->canonical != canonical_rpe ||
        view->as_of != as_of) {
      continue;
    }
    std::lock_guard<std::mutex> vlock(view->mu);
    if (view->fresh_epoch == 0) continue;  // initial build still running
    if (view->snapshot == nullptr) view->snapshot = SnapshotLocked(*view);
    return nql::ServedView{name, db_, view->as_of, view->fresh_epoch,
                           view->snapshot};
  }
  return std::nullopt;
}

std::optional<nql::ServedView> ViewCatalog::Serve(
    const std::string& name) const {
  std::shared_ptr<View> view;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = views_.find(name);
    if (it == views_.end()) return std::nullopt;
    view = it->second;
  }
  std::lock_guard<std::mutex> vlock(view->mu);
  if (view->fresh_epoch == 0) return std::nullopt;
  if (view->snapshot == nullptr) view->snapshot = SnapshotLocked(*view);
  return nql::ServedView{view->name, db_, view->as_of, view->fresh_epoch,
                         view->snapshot};
}

// ---- Maintenance ----

void ViewCatalog::MaintenanceLoop(const std::atomic<bool>& stop) {
  std::vector<persist::WalRecord> group;
  uint64_t group_epoch = 0;
  auto flush = [&] {
    if (group.empty()) return;
    ApplyGroup(group, group_epoch);
    group.clear();
    group_epoch = 0;
    UpdateGauges();
  };
  while (!stop.load(std::memory_order_acquire)) {
    // Initial builds and flagged rebuilds first, so a freshly registered
    // view becomes servable without waiting for write traffic.
    std::vector<std::shared_ptr<View>> rebuilds;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [name, view] : views_) {
        std::lock_guard<std::mutex> vlock(view->mu);
        if (view->rebuild_pending) rebuilds.push_back(view);
      }
    }
    if (!rebuilds.empty()) {
      flush();
      for (const std::shared_ptr<View>& view : rebuilds) Rebuild(view.get());
      UpdateGauges();
    }

    std::shared_ptr<persist::WalSubscription> sub;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sub = sub_;
    }
    if (sub == nullptr) break;
    persist::WalShipFrame frame;
    Result<bool> got = sub->Next(
        &frame, std::chrono::milliseconds(group.empty() ? 20 : 0));
    if (!got.ok()) {
      flush();
      if (stop.load(std::memory_order_acquire)) break;
      if (sub->lagged()) {
        // The stream has a hole; re-bootstrap every view from a fresh
        // subscription and a full rebuild.
        Result<std::shared_ptr<persist::WalSubscription>> fresh =
            store_->Subscribe();
        if (!fresh.ok()) break;
        {
          std::lock_guard<std::mutex> lock(mu_);
          sub_ = *fresh;
          for (const auto& [name, view] : views_) {
            std::lock_guard<std::mutex> vlock(view->mu);
            view->rebuild_pending = true;
          }
        }
        continue;
      }
      break;  // closed: the store is shutting down
    }
    if (!*got) {  // timeout
      flush();
      continue;
    }
    // Disk catch-up frames carry epoch 0; every such commit predates the
    // initial build epoch, which already includes it.
    if (frame.commit_epoch == 0) continue;
    Result<persist::WalRecord> rec = persist::DecodeWalRecord(frame.payload);
    if (!rec.ok()) {
      // A frame we cannot interpret invalidates incremental maintenance;
      // fall back to rebuilding everything past it.
      flush();
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [name, view] : views_) {
        std::lock_guard<std::mutex> vlock(view->mu);
        view->rebuild_pending = true;
      }
      continue;
    }
    if (!group.empty() && frame.commit_epoch != group_epoch) flush();
    group_epoch = frame.commit_epoch;
    group.push_back(std::move(*rec));
  }
}

void ViewCatalog::ApplyGroup(const std::vector<persist::WalRecord>& records,
                             uint64_t epoch) {
  std::vector<std::shared_ptr<View>> views;
  {
    std::lock_guard<std::mutex> lock(mu_);
    views.reserve(views_.size());
    for (const auto& [name, view] : views_) views.push_back(view);
  }
  for (const std::shared_ptr<View>& view : views) {
    {
      std::lock_guard<std::mutex> vlock(view->mu);
      if (view->rebuild_pending) continue;  // the pending rebuild covers it
      if (epoch <= view->fresh_epoch) {
        view->skipped_records += records.size();
        SkippedCounter()->Add(records.size());
        continue;
      }
    }
    std::vector<Uid> touched;
    bool rebuild = false;
    size_t skipped = 0;
    for (const persist::WalRecord& rec : records) {
      if (rec.type == storage::WalRecordType::kSetTime) {
        // Clock moves shift what "current" means for every in-flight
        // interval; cheaper to rebuild than to reason about.
        rebuild = true;
        break;
      }
      const schema::ClassDef* cls = nullptr;
      if (rec.type == storage::WalRecordType::kAddNode ||
          rec.type == storage::WalRecordType::kAddEdge) {
        cls = db_->schema().FindClass(rec.class_name);
      } else {
        // Update/Remove records carry no class. An element already cached
        // is relevant regardless; otherwise probe its history for the
        // class (a removed node may cascade onto cached edges, but those
        // paths also contain the node itself, so the class test covers it).
        bool indexed;
        {
          std::lock_guard<std::mutex> vlock(view->mu);
          indexed = view->index.count(rec.uid) > 0;
        }
        if (indexed) {
          touched.push_back(rec.uid);
          continue;
        }
        cls = ClassOf(rec.uid, epoch);
        if (cls == nullptr) {  // never became visible: cannot affect rows
          ++skipped;
          continue;
        }
      }
      if (view->footprint.Relevant(cls)) {
        touched.push_back(rec.uid);
      } else {
        ++skipped;
      }
    }
    if (rebuild || (!touched.empty() && view->footprint.unbounded)) {
      std::lock_guard<std::mutex> vlock(view->mu);
      view->rebuild_pending = true;
      continue;
    }
    if (skipped > 0) {
      SkippedCounter()->Add(skipped);
      std::lock_guard<std::mutex> vlock(view->mu);
      view->skipped_records += skipped;
    }
    if (touched.empty()) {
      // Nothing in this commit can change the rows: the cache is exact at
      // the new epoch too.
      {
        std::lock_guard<std::mutex> vlock(view->mu);
        view->fresh_epoch = epoch;
      }
      { std::lock_guard<std::mutex> lock(mu_); }
      fresh_cv_.notify_all();
      continue;
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    Repair(view.get(), touched, epoch);
  }
}

void ViewCatalog::Rebuild(View* view) {
  const uint64_t t0 = obs::TraceNowNs();
  obs::ScopedTrace scoped(obs::Tracer::Global().StartTrace("view.rebuild"));
  const uint64_t epoch = db_->commit_epoch();
  const storage::TimeView vt = PinnedView(*view, epoch);
  nql::LockedBackend backend(db_);
  std::unique_ptr<storage::PathOperatorExecutor> exec =
      backend.CreateExecutor();
  std::map<BucketKey, storage::PathSet> buckets;
  for (size_t k = 0; k < view->plan.anchors.size(); ++k) {
    storage::PathSet anchors =
        exec->Select(view->plan.anchors[k].anchor, vt);
    std::map<Uid, storage::PathSet> grouped;
    for (storage::PathState& s : anchors) {
      if (s.uids.empty()) continue;
      grouped[s.uids[0]].push_back(std::move(s));
    }
    for (auto& [anchor_uid, seeds] : grouped) {
      storage::PathSet rows = RunAnchoredFrom(
          view->plan.anchors[k], std::move(seeds), vt, *exec);
      if (!rows.empty()) buckets[{k, anchor_uid}] = std::move(rows);
    }
  }
  {
    std::lock_guard<std::mutex> vlock(view->mu);
    view->buckets = std::move(buckets);
    ReindexLocked(view);
    view->fresh_epoch = epoch;
    view->rebuild_pending = false;
    ++view->rebuilds;
    view->snapshot = SnapshotLocked(*view);  // serve off the query path
  }
  { std::lock_guard<std::mutex> lock(mu_); }
  fresh_cv_.notify_all();
  RebuildsCounter()->Add(1);
  RepairHistogram()->Observe(obs::TraceNowNs() - t0);
}

void ViewCatalog::Repair(View* view, const std::vector<Uid>& uids,
                         uint64_t epoch) {
  const uint64_t t0 = obs::TraceNowNs();
  obs::ScopedTrace scoped(obs::Tracer::Global().StartTrace("view.repair"));
  const storage::TimeView vt = PinnedView(*view, epoch);
  nql::LockedBackend backend(db_);
  // Buckets to recompute: every bucket whose cached paths contain a
  // touched element (lost/changed rows), plus every anchor element within
  // footprint radius of a touched element (gained rows must contain the
  // touched element, and their anchor cannot be farther than a path
  // stretches).
  std::set<BucketKey> keys;
  {
    std::lock_guard<std::mutex> vlock(view->mu);
    for (Uid uid : uids) {
      auto it = view->index.find(uid);
      if (it == view->index.end()) continue;
      keys.insert(it->second.begin(), it->second.end());
    }
  }
  {
    obs::ScopedSpan span("view.locate");
    for (Uid uid : uids) AnchorsNear(*view, uid, vt, backend, &keys);
  }
  // Recompute outside view->mu: evaluation takes the database lock and can
  // wait out the writer, and serving must keep answering from the old
  // snapshot meanwhile. Only the maintenance thread mutates buckets, so
  // the staged results cannot go stale between compute and splice.
  std::unique_ptr<storage::PathOperatorExecutor> exec =
      backend.CreateExecutor();
  std::map<BucketKey, storage::PathSet> recomputed;
  {
    obs::ScopedSpan span("view.recompute");
    for (const BucketKey& key : keys) {
      recomputed[key] = RecomputeBucket(*view, key, vt, *exec);
    }
  }
  {
    std::lock_guard<std::mutex> vlock(view->mu);
    for (auto& [key, rows] : recomputed) {
      if (rows.empty()) {
        view->buckets.erase(key);
      } else {
        view->buckets[key] = std::move(rows);
      }
    }
    ReindexLocked(view);
    view->fresh_epoch = epoch;
    ++view->repairs;
    // Regenerate the canonical snapshot here, on the maintenance thread,
    // so Serve()/Match() hand out a shared pointer instead of paying the
    // concat+sort on the query path after every repair.
    view->snapshot = SnapshotLocked(*view);
  }
  { std::lock_guard<std::mutex> lock(mu_); }
  fresh_cv_.notify_all();
  RepairsCounter()->Add(1);
  RepairHistogram()->Observe(obs::TraceNowNs() - t0);
}

storage::PathSet ViewCatalog::RecomputeBucket(
    const View& view, const BucketKey& key,
    const storage::TimeView& view_time,
    storage::PathOperatorExecutor& exec) {
  storage::CompiledAtom anchor = view.plan.anchors[key.first].anchor;
  storage::FieldCondition pin;
  pin.field_index = -1;  // the `id` pseudo-field; pushes into ScanSpec::uid
  pin.field_name = "id";
  pin.op = storage::FieldCondition::Op::kEq;
  pin.value = Value(static_cast<int64_t>(key.second));
  anchor.conditions.push_back(std::move(pin));
  storage::PathSet seeds = exec.Select(anchor, view_time);
  storage::PathSet rows;
  if (!seeds.empty()) {
    rows = RunAnchoredFrom(view.plan.anchors[key.first], std::move(seeds),
                           view_time, exec);
  }
  return rows;
}

void ViewCatalog::AnchorsNear(const View& view, Uid uid,
                              const storage::TimeView& view_time,
                              const storage::StorageBackend& backend,
                              std::set<BucketKey>* out) const {
  const int radius = view.footprint.radius();
  std::set<Uid> visited;
  std::deque<std::pair<Uid, int>> frontier;
  frontier.emplace_back(uid, 0);
  visited.insert(uid);
  while (!frontier.empty()) {
    auto [cur, depth] = frontier.front();
    frontier.pop_front();
    std::optional<storage::ElementVersion> version;
    backend.Get(cur, view_time, [&](const storage::ElementVersion& v) {
      version = v;
    });
    if (!version) continue;  // not visible at the repair epoch
    for (size_t k = 0; k < view.plan.anchors.size(); ++k) {
      if (view.plan.anchors[k].anchor.Matches(*version)) {
        out->insert({k, cur});
      }
    }
    if (depth >= radius) continue;
    auto visit = [&](Uid next) {
      if (visited.insert(next).second) frontier.emplace_back(next, depth + 1);
    };
    if (version->is_edge()) {
      visit(version->source);
      visit(version->target);
    } else {
      auto sink = [&](const storage::ElementVersion& e) { visit(e.uid); };
      backend.IncidentEdges(cur, storage::Direction::kOut, nullptr, view_time,
                            sink);
      backend.IncidentEdges(cur, storage::Direction::kIn, nullptr, view_time,
                            sink);
    }
  }
}

const schema::ClassDef* ViewCatalog::ClassOf(Uid uid, uint64_t epoch) const {
  nql::LockedBackend backend(db_);
  const schema::ClassDef* cls = nullptr;
  backend.Get(uid, storage::TimeView::Range(Interval::All()).WithEpoch(epoch),
              [&](const storage::ElementVersion& v) { cls = v.cls; });
  return cls;
}

storage::TimeView ViewCatalog::PinnedView(const View& view, uint64_t epoch) {
  const storage::TimeView base = view.as_of
                                     ? storage::TimeView::AsOf(*view.as_of)
                                     : storage::TimeView::Current();
  return base.WithEpoch(epoch);
}

void ViewCatalog::ReindexLocked(View* view) {
  view->index.clear();
  for (const auto& [key, paths] : view->buckets) {
    for (const storage::PathState& p : paths) {
      for (Uid u : p.uids) view->index[u].insert(key);
    }
  }
}

std::shared_ptr<const storage::PathSet> ViewCatalog::SnapshotLocked(
    const View& view) {
  storage::PathSet all;
  for (const auto& [key, paths] : view.buckets) {
    all.insert(all.end(), paths.begin(), paths.end());
  }
  // Same normalization cold evaluation applies: dedup across buckets (one
  // path can be reachable from several anchors) and canonical order.
  storage::CanonicalizePaths(&all);
  return std::make_shared<const storage::PathSet>(std::move(all));
}

void ViewCatalog::UpdateGauges() const {
  auto& reg = obs::MetricsRegistry::Global();
  const uint64_t commit = db_->commit_epoch();
  uint64_t worst = 0;
  size_t registered = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registered = views_.size();
    for (const auto& [name, view] : views_) {
      std::lock_guard<std::mutex> vlock(view->mu);
      const uint64_t lag =
          commit > view->fresh_epoch ? commit - view->fresh_epoch : 0;
      worst = std::max(worst, lag);
    }
  }
  reg.GetGauge("nepal.views.registered")->Set(static_cast<int64_t>(registered));
  reg.GetGauge("nepal.views.staleness_epochs")
      ->Set(static_cast<int64_t>(worst));
}

}  // namespace nepal::views
