#include "views/footprint.h"

#include <algorithm>

namespace nepal::views {

namespace {

void AddClass(std::vector<const schema::ClassDef*>* classes,
              const schema::ClassDef* cls) {
  if (cls == nullptr) return;
  if (std::find(classes->begin(), classes->end(), cls) != classes->end()) {
    return;
  }
  classes->push_back(cls);
}

void CollectProgram(const nql::Program& program,
                    std::vector<const schema::ClassDef*>* classes) {
  for (const nql::Step& step : program) {
    switch (step.kind) {
      case nql::Step::Kind::kAtom:
        AddClass(classes, step.atom.cls);
        break;
      case nql::Step::Kind::kUnion:
        for (const nql::Program& branch : step.branches) {
          CollectProgram(branch, classes);
        }
        break;
      case nql::Step::Kind::kLoop:
        CollectProgram(step.body, classes);
        break;
      case nql::Step::Kind::kAutomaton:
        if (step.nfa != nullptr) {
          for (const auto& out : step.nfa->states) {
            for (const nql::NfaTransition& t : out) {
              AddClass(classes, t.atom.cls);
            }
          }
        }
        break;
    }
  }
}

/// First/last/emptiness analysis over the resolved RPE, driving the
/// implicit-element flags: which atom kinds can open or close a matching
/// fragment, and can the fragment consume zero atoms?
struct Ends {
  bool first_node = false, first_edge = false;
  bool last_node = false, last_edge = false;
  bool empty = false;
};

void Analyze(const nql::RpeNode& node, Ends* ends, bool* implicit_edges,
             bool* implicit_nodes) {
  switch (node.kind) {
    case nql::RpeNode::Kind::kAtom: {
      const bool edge = node.atom.cls != nullptr && node.atom.cls->is_edge();
      ends->first_node = ends->last_node = !edge;
      ends->first_edge = ends->last_edge = edge;
      ends->empty = false;
      return;
    }
    case nql::RpeNode::Kind::kAlt: {
      Ends acc;
      for (const nql::RpeNode& child : node.children) {
        Ends c;
        Analyze(child, &c, implicit_edges, implicit_nodes);
        acc.first_node |= c.first_node;
        acc.first_edge |= c.first_edge;
        acc.last_node |= c.last_node;
        acc.last_edge |= c.last_edge;
        acc.empty |= c.empty;
      }
      *ends = acc;
      return;
    }
    case nql::RpeNode::Kind::kSeq: {
      // Walk left to right, carrying the set of possible "open tail" kinds
      // across children (empty children are skipped transparently).
      Ends acc;
      acc.empty = true;
      for (const nql::RpeNode& child : node.children) {
        Ends c;
        Analyze(child, &c, implicit_edges, implicit_nodes);
        // Adjacency between the running tail and the child's head.
        if (acc.last_node && c.first_node) *implicit_edges = true;
        if (acc.last_edge && c.first_edge) *implicit_nodes = true;
        if (acc.empty) {
          acc.first_node |= c.first_node;
          acc.first_edge |= c.first_edge;
        }
        if (c.empty) {
          acc.last_node |= c.last_node;
          acc.last_edge |= c.last_edge;
        } else {
          acc.last_node = c.last_node;
          acc.last_edge = c.last_edge;
        }
        acc.empty &= c.empty;
      }
      *ends = acc;
      return;
    }
    case nql::RpeNode::Kind::kRep: {
      Ends body;
      if (!node.children.empty()) {
        Analyze(node.children[0], &body, implicit_edges, implicit_nodes);
      }
      if (node.max_rep >= 2) {
        // Iteration seam: the body's tail meets its own head.
        if (body.last_node && body.first_node) *implicit_edges = true;
        if (body.last_edge && body.first_edge) *implicit_nodes = true;
      }
      *ends = body;
      ends->empty = body.empty || node.min_rep == 0;
      return;
    }
  }
}

}  // namespace

bool ViewFootprint::Relevant(const schema::ClassDef* cls) const {
  if (cls == nullptr) return true;  // unknown class: stay conservative
  if (implicit_edges && cls->is_edge()) return true;
  if (implicit_nodes && cls->is_node()) return true;
  for (const schema::ClassDef* fc : classes) {
    // Both directions: an atom over an ancestor scans subclass rows, and a
    // write of an ancestor class lands in scans over any of its subtrees'
    // siblings only via the ancestor atom — covered by the first test.
    if (cls->IsSubclassOf(fc) || fc->IsSubclassOf(cls)) return true;
  }
  return false;
}

int ViewFootprint::radius() const {
  if (unbounded || max_atoms >= nql::kUnboundedRep / 2) {
    return nql::kUnboundedRep;
  }
  // A finalized path over A atoms holds at most 2*A + 1 elements once
  // implicit edges/nodes are filled in, so no two of its elements are more
  // than 2*A hops apart in the element graph.
  return 2 * max_atoms + 1;
}

std::string ViewFootprint::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < classes.size(); ++i) {
    if (i > 0) out += ", ";
    out += classes[i]->name();
  }
  out += "}";
  if (implicit_edges) out += " +implicit-edges";
  if (implicit_nodes) out += " +implicit-nodes";
  if (unbounded) {
    out += " r=inf";
  } else {
    out += " r=" + std::to_string(radius());
  }
  return out;
}

ViewFootprint CollectFootprint(const nql::MatchPlan& plan,
                               const nql::RpeNode& resolved_rpe) {
  ViewFootprint fp;
  for (const nql::AnchoredPlan& anchored : plan.anchors) {
    AddClass(&fp.classes, anchored.anchor.cls);
    CollectProgram(anchored.suffix, &fp.classes);
    CollectProgram(anchored.reversed_prefix, &fp.classes);
  }
  Ends ends;
  Analyze(resolved_rpe, &ends, &fp.implicit_edges, &fp.implicit_nodes);
  // Implicit endpoint nodes at the pathway boundaries.
  if (ends.first_edge || ends.last_edge) fp.implicit_nodes = true;
  fp.max_atoms = nql::MaxAtoms(resolved_rpe);
  fp.unbounded = fp.max_atoms >= nql::kUnboundedRep;
  return fp;
}

}  // namespace nepal::views
