#include "graphstore/graph_store.h"

#include <algorithm>

namespace nepal::graphstore {

using storage::Direction;
using storage::ElementSink;
using storage::ElementVersion;
using storage::ScanSpec;
using storage::TimeView;
using storage::VersionChain;

GraphStore::GraphStore(schema::SchemaPtr schema, GraphStoreOptions options)
    : StorageBackend(schema.get()),
      schema_(std::move(schema)),
      options_(std::move(options)) {
  buckets_.resize(schema_->classes().size());
}

const schema::ClassDef* GraphStore::CurrentClassOf(Uid uid) const {
  const VersionChain* chain = FindChain(uid);
  if (chain == nullptr || chain->Current() == nullptr) return nullptr;
  return chain->Current()->cls;
}

const VersionChain* GraphStore::FindChain(Uid uid) const {
  auto it = elements_.find(uid);
  return it == elements_.end() ? nullptr : &it->second;
}

GraphStore::ClassBucket& GraphStore::BucketFor(const schema::ClassDef* cls) {
  return buckets_[static_cast<size_t>(cls->order())];
}

void GraphStore::IndexInsert(const schema::ClassDef* cls,
                             const std::vector<Value>& row, Uid uid) {
  ClassBucket& bucket = BucketFor(cls);
  for (const std::string& field : options_.indexed_fields) {
    int idx = cls->FieldIndex(field);
    if (idx < 0 || row[static_cast<size_t>(idx)].is_null()) continue;
    bucket.indexes[field][row[static_cast<size_t>(idx)]].push_back(uid);
  }
}

void GraphStore::IndexRemove(const schema::ClassDef* cls,
                             const std::vector<Value>& row, Uid uid) {
  ClassBucket& bucket = BucketFor(cls);
  for (const std::string& field : options_.indexed_fields) {
    int idx = cls->FieldIndex(field);
    if (idx < 0 || row[static_cast<size_t>(idx)].is_null()) continue;
    auto field_it = bucket.indexes.find(field);
    if (field_it == bucket.indexes.end()) continue;
    auto val_it = field_it->second.find(row[static_cast<size_t>(idx)]);
    if (val_it == field_it->second.end()) continue;
    std::vector<Uid>& uids = val_it->second;
    uids.erase(std::remove(uids.begin(), uids.end(), uid), uids.end());
  }
}

Status GraphStore::InsertNode(Uid uid, const schema::ClassDef* cls,
                              std::vector<Value> row, Timestamp t) {
  VersionChain& chain = elements_[uid];
  if (!chain.empty()) {
    return Status::AlreadyExists("uid " + std::to_string(uid) +
                                 " already exists");
  }
  ElementVersion v;
  v.uid = uid;
  v.cls = cls;
  v.fields = std::move(row);
  IndexInsert(cls, v.fields, uid);
  NEPAL_RETURN_NOT_OK(chain.Open(std::move(v), t, write_epoch_));
  ClassBucket& bucket = BucketFor(cls);
  bucket.uids.push_back(uid);
  ++bucket.current_count;
  ++version_count_;
  stats_.OnInsert(cls, chain.Current()->fields);
  return Status::OK();
}

Status GraphStore::InsertEdge(Uid uid, const schema::ClassDef* cls,
                              std::vector<Value> row, Uid source, Uid target,
                              Timestamp t) {
  VersionChain& chain = elements_[uid];
  if (!chain.empty()) {
    return Status::AlreadyExists("uid " + std::to_string(uid) +
                                 " already exists");
  }
  ElementVersion v;
  v.uid = uid;
  v.cls = cls;
  v.fields = std::move(row);
  v.source = source;
  v.target = target;
  IndexInsert(cls, v.fields, uid);
  NEPAL_RETURN_NOT_OK(chain.Open(std::move(v), t, write_epoch_));
  ClassBucket& bucket = BucketFor(cls);
  bucket.uids.push_back(uid);
  ++bucket.current_count;
  ++version_count_;
  out_edges_[source].push_back(uid);
  in_edges_[target].push_back(uid);
  stats_.OnInsert(cls, chain.Current()->fields);
  stats_.OnEdgeLinked(cls, source, CurrentClassOf(source), target,
                      CurrentClassOf(target));
  return Status::OK();
}

Status GraphStore::Update(Uid uid,
                          const std::vector<std::pair<int, Value>>& changes,
                          Timestamp t) {
  auto it = elements_.find(uid);
  if (it == elements_.end() || it->second.Current() == nullptr) {
    return Status::NotFound("no current element with uid " +
                            std::to_string(uid));
  }
  ElementVersion next = *it->second.Current();
  std::vector<Value> old_fields = next.fields;
  IndexRemove(next.cls, next.fields, uid);
  for (const auto& [idx, value] : changes) {
    next.fields[static_cast<size_t>(idx)] = value;
  }
  NEPAL_RETURN_NOT_OK(it->second.Close(t, write_epoch_));
  NEPAL_RETURN_NOT_OK(it->second.Open(std::move(next), t, write_epoch_));
  const ElementVersion* cur = it->second.Current();
  IndexInsert(cur->cls, cur->fields, uid);
  ++version_count_;
  stats_.OnUpdate(cur->cls, old_fields, cur->fields);
  return Status::OK();
}

Status GraphStore::RestoreChain(Uid uid, std::vector<ElementVersion> chain) {
  if (chain.empty()) {
    return Status::Corruption("checkpoint chain for uid " +
                              std::to_string(uid) + " is empty");
  }
  if (FindChain(uid) != nullptr) {
    return Status::Corruption("checkpoint restores uid " +
                              std::to_string(uid) + " twice");
  }
  const schema::ClassDef* cls = chain.front().cls;
  const Uid source = chain.front().source;
  const Uid target = chain.front().target;
  VersionChain& vc = elements_[uid];
  for (ElementVersion& v : chain) {
    if (v.uid != uid || v.cls != cls) {
      return Status::Corruption("inconsistent checkpoint chain for uid " +
                                std::to_string(uid));
    }
    const Interval valid = v.valid;
    NEPAL_RETURN_NOT_OK(vc.Open(std::move(v), valid.start));
    if (valid.end != kTimestampMax) {
      NEPAL_RETURN_NOT_OK(vc.Close(valid.end));
    }
  }
  ClassBucket& bucket = BucketFor(cls);
  bucket.uids.push_back(uid);
  version_count_ += vc.versions().size();
  if (const ElementVersion* cur = vc.Current()) {
    ++bucket.current_count;
    IndexInsert(cur->cls, cur->fields, uid);
  }
  // Adjacency keeps every edge ever inserted (visibility is resolved on the
  // chain), so deleted edges are linked too — exactly as InsertEdge did.
  if (cls->is_edge()) {
    out_edges_[source].push_back(uid);
    in_edges_[target].push_back(uid);
  }
  return Status::OK();
}

Status GraphStore::Delete(Uid uid, Timestamp t) {
  auto it = elements_.find(uid);
  if (it == elements_.end() || it->second.Current() == nullptr) {
    return Status::NotFound("no current element with uid " +
                            std::to_string(uid));
  }
  const ElementVersion* cur = it->second.Current();
  IndexRemove(cur->cls, cur->fields, uid);
  --BucketFor(cur->cls).current_count;
  stats_.OnRemove(cur->cls, cur->fields);
  if (cur->is_edge()) {
    stats_.OnEdgeUnlinked(cur->cls, cur->source, CurrentClassOf(cur->source),
                          cur->target, CurrentClassOf(cur->target));
  }
  return it->second.Close(t, write_epoch_);
}

void GraphStore::Scan(const ScanSpec& spec, const TimeView& view,
                      const ElementSink& sink) const {
  if (spec.uid) {
    // Exact-uid lookup: the global uid index replaces the class scan.
    if (const VersionChain* chain = FindChain(*spec.uid)) {
      chain->ForEach(view, [&](const ElementVersion& v) {
        if (spec.Matches(v)) sink(v);
      });
    }
    return;
  }
  const int begin = spec.cls->order();
  const int end = spec.cls->subtree_end();
  // Equality pushdown through the per-class hash indexes. Indexes cover
  // current versions only, so historical views — and epoch-pinned snapshot
  // views, whose "current" may include versions since updated away — scan
  // sequentially.
  if (spec.eq && view.is_current() && !view.has_epoch()) {
    const std::string& field_name =
        spec.cls->fields()[static_cast<size_t>(spec.eq->first)].name;
    bool indexed =
        std::find(options_.indexed_fields.begin(),
                  options_.indexed_fields.end(),
                  field_name) != options_.indexed_fields.end();
    if (indexed) {
      for (int order = begin; order < end; ++order) {
        const ClassBucket& bucket = buckets_[static_cast<size_t>(order)];
        auto field_it = bucket.indexes.find(field_name);
        if (field_it == bucket.indexes.end()) continue;
        auto val_it = field_it->second.find(spec.eq->second);
        if (val_it == field_it->second.end()) continue;
        for (Uid uid : val_it->second) {
          const VersionChain* chain = FindChain(uid);
          if (chain == nullptr) continue;
          chain->ForEach(view, [&](const ElementVersion& v) {
            if (spec.Matches(v)) sink(v);
          });
        }
      }
      return;
    }
  }
  for (int order = begin; order < end; ++order) {
    const ClassBucket& bucket = buckets_[static_cast<size_t>(order)];
    for (Uid uid : bucket.uids) {
      const VersionChain* chain = FindChain(uid);
      if (chain == nullptr) continue;
      chain->ForEach(view, [&](const ElementVersion& v) {
        if (spec.Matches(v)) sink(v);
      });
    }
  }
}

void GraphStore::Get(Uid uid, const TimeView& view,
                     const ElementSink& sink) const {
  if (const VersionChain* chain = FindChain(uid)) {
    chain->ForEach(view, sink);
  }
}

void GraphStore::IncidentEdges(Uid node, Direction dir,
                               const schema::ClassDef* edge_cls,
                               const TimeView& view,
                               const ElementSink& sink) const {
  auto emit_from = [&](const std::unordered_map<Uid, std::vector<Uid>>& adj) {
    auto it = adj.find(node);
    if (it == adj.end()) return;
    for (Uid edge_uid : it->second) {
      const VersionChain* chain = FindChain(edge_uid);
      if (chain == nullptr) continue;
      chain->ForEach(view, [&](const ElementVersion& v) {
        if (edge_cls == nullptr || v.cls->IsSubclassOf(edge_cls)) sink(v);
      });
    }
  };
  if (dir == Direction::kOut || dir == Direction::kBoth) emit_from(out_edges_);
  if (dir == Direction::kIn || dir == Direction::kBoth) emit_from(in_edges_);
}

bool GraphStore::Exists(Uid uid, const TimeView& view) const {
  bool found = false;
  Get(uid, view, [&](const ElementVersion&) { found = true; });
  return found;
}

size_t GraphStore::CountClass(const schema::ClassDef* cls) const {
  size_t count = 0;
  for (int order = cls->order(); order < cls->subtree_end(); ++order) {
    count += buckets_[static_cast<size_t>(order)].current_count;
  }
  return count;
}

size_t GraphStore::MemoryUsage() const {
  size_t bytes = sizeof(GraphStore);
  for (const auto& [uid, chain] : elements_) bytes += chain.MemoryUsage();
  for (const auto& [uid, edges] : out_edges_) {
    bytes += sizeof(Uid) * (edges.capacity() + 1);
  }
  for (const auto& [uid, edges] : in_edges_) {
    bytes += sizeof(Uid) * (edges.capacity() + 1);
  }
  for (const ClassBucket& bucket : buckets_) {
    bytes += sizeof(Uid) * bucket.uids.capacity();
  }
  return bytes;
}

size_t GraphStore::VersionCount() const { return version_count_; }

}  // namespace nepal::graphstore
