// GraphStore: the property-graph execution backend.
//
// This backend mirrors the paper's Gremlin implementation strategy:
//  - every element carries its full inheritance path as its label
//    ("Node:Container:VM:VMWare"); a class atom matches by *label prefix*,
//    which is how query-time generalization is realized without native
//    class support. (Physically we bucket uids by exact class and walk the
//    pre-order subtree — observably identical to prefix matching, since a
//    label is a prefix of another exactly when the classes are in the
//    subtree relation.)
//  - traversal executes step-wise per traverser; the ExtendBlock operator
//    (see nepal/operators.h) runs repetition blocks as an unrolled loop
//    inside the store without shipping intermediate frontiers out.
//
// Adjacency is kept as edge-uid lists per node; version visibility is
// resolved on the edge's chain, so one adjacency structure serves the
// current snapshot, timeslices, and range scans.

#ifndef NEPAL_GRAPHSTORE_GRAPH_STORE_H_
#define NEPAL_GRAPHSTORE_GRAPH_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "schema/schema.h"
#include "storage/backend.h"
#include "storage/version_chain.h"

namespace nepal::graphstore {

struct GraphStoreOptions {
  /// Field names to maintain equality hash indexes on (current versions
  /// only; historical scans fall back to sequential filtering).
  std::vector<std::string> indexed_fields = {"name"};
};

class GraphStore final : public storage::StorageBackend {
 public:
  explicit GraphStore(schema::SchemaPtr schema,
                      GraphStoreOptions options = GraphStoreOptions());

  std::string name() const override { return "graphstore"; }

  Status InsertNode(Uid uid, const schema::ClassDef* cls,
                    std::vector<Value> row, Timestamp t) override;
  Status InsertEdge(Uid uid, const schema::ClassDef* cls,
                    std::vector<Value> row, Uid source, Uid target,
                    Timestamp t) override;
  Status Update(Uid uid, const std::vector<std::pair<int, Value>>& changes,
                Timestamp t) override;
  Status Delete(Uid uid, Timestamp t) override;
  Status RestoreChain(Uid uid,
                      std::vector<storage::ElementVersion> chain) override;

  void Scan(const storage::ScanSpec& spec, const storage::TimeView& view,
            const storage::ElementSink& sink) const override;
  void Get(Uid uid, const storage::TimeView& view,
           const storage::ElementSink& sink) const override;
  void IncidentEdges(Uid node, storage::Direction dir,
                     const schema::ClassDef* edge_cls,
                     const storage::TimeView& view,
                     const storage::ElementSink& sink) const override;
  bool Exists(Uid uid, const storage::TimeView& view) const override;

  size_t CountClass(const schema::ClassDef* cls) const override;
  size_t MemoryUsage() const override;
  size_t VersionCount() const override;

  const schema::Schema& schema() const { return *schema_; }

 private:
  struct ClassBucket {
    std::vector<Uid> uids;        // every uid ever inserted with this class
    size_t current_count = 0;     // open versions
    /// field name -> value -> uids (current versions only).
    std::unordered_map<std::string,
                       std::unordered_map<Value, std::vector<Uid>, ValueHash>>
        indexes;
  };

  const storage::VersionChain* FindChain(Uid uid) const;
  const schema::ClassDef* CurrentClassOf(Uid uid) const;
  ClassBucket& BucketFor(const schema::ClassDef* cls);
  void IndexInsert(const schema::ClassDef* cls, const std::vector<Value>& row,
                   Uid uid);
  void IndexRemove(const schema::ClassDef* cls, const std::vector<Value>& row,
                   Uid uid);

  schema::SchemaPtr schema_;
  GraphStoreOptions options_;
  std::unordered_map<Uid, storage::VersionChain> elements_;
  /// Bucket per class, addressed by ClassDef::order(); subtree scans walk
  /// the contiguous pre-order range (== label-prefix matching).
  std::vector<ClassBucket> buckets_;
  std::unordered_map<Uid, std::vector<Uid>> out_edges_;
  std::unordered_map<Uid, std::vector<Uid>> in_edges_;
  size_t version_count_ = 0;
};

}  // namespace nepal::graphstore

#endif  // NEPAL_GRAPHSTORE_GRAPH_STORE_H_
