// WriteLog: the durability hook GraphDb appends to.
//
// GraphDb is the single point every mutation flows through for both
// execution backends, so it is also where the write-ahead log attaches:
// after a write has been validated and applied (and while the writer lock
// is still held, so records land in commit order), GraphDb calls the
// matching Append* method. Only top-level operations are logged — a node
// removal's cascaded edge deletions are reproduced deterministically by
// replaying the RemoveElement itself.
//
// src/persist provides the production implementation (length- and
// CRC32C-framed segment files); the interface lives here so the storage
// layer does not depend on the persistence layer.

#ifndef NEPAL_STORAGE_WRITE_LOG_H_
#define NEPAL_STORAGE_WRITE_LOG_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "common/value.h"
#include "schema/class_def.h"

namespace nepal::storage {

class WriteLog {
 public:
  virtual ~WriteLog() = default;

  /// The transaction clock moved to `t`.
  virtual Status AppendSetTime(Timestamp t) = 0;
  /// A node of exactly `cls` was inserted with the fully validated `row`
  /// (layout-aligned with cls->fields()) and was assigned `uid`.
  virtual Status AppendAddNode(Uid uid, const schema::ClassDef* cls,
                               const std::vector<Value>& row, Timestamp t) = 0;
  virtual Status AppendAddEdge(Uid uid, const schema::ClassDef* cls,
                               const std::vector<Value>& row, Uid source,
                               Uid target, Timestamp t) = 0;
  /// The current version of `uid` was replaced with the given
  /// (field index, value) changes applied.
  virtual Status AppendUpdate(
      Uid uid, const std::vector<std::pair<int, Value>>& changes,
      Timestamp t) = 0;
  /// `uid` was removed (node removals cascade on replay exactly as they
  /// did originally; cascaded deletions are not logged).
  virtual Status AppendRemove(Uid uid, Timestamp t) = 0;
};

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_WRITE_LOG_H_
