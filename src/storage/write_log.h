// WriteLog: the durability hook GraphDb appends to, and the logical WAL
// record it carries.
//
// GraphDb is the single point every mutation flows through for both
// execution backends, so it is also where the write-ahead log attaches:
// after a write has been validated and applied (and while the writer lock
// is still held, so records land in commit order), GraphDb builds one
// WalRecord and calls Append. The same typed struct then flows everywhere
// a commit goes — the on-disk segment framing, replication subscribers,
// and replay — without being re-encoded or re-interpreted per consumer.
// Only top-level operations are logged; a node removal's cascaded edge
// deletions are reproduced deterministically by replaying the
// RemoveElement itself.
//
// src/persist provides the production implementation (length- and
// CRC32C-framed segment files) and the binary codec; the record type and
// interface live here so the storage layer does not depend on the
// persistence layer.

#ifndef NEPAL_STORAGE_WRITE_LOG_H_
#define NEPAL_STORAGE_WRITE_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "common/value.h"

namespace nepal::storage {

enum class WalRecordType : uint8_t {
  kSetTime = 1,
  kAddNode = 2,
  kAddEdge = 3,
  kUpdate = 4,
  kRemove = 5,
};

inline const char* WalRecordTypeToString(WalRecordType type) {
  switch (type) {
    case WalRecordType::kSetTime:
      return "SetTime";
    case WalRecordType::kAddNode:
      return "AddNode";
    case WalRecordType::kAddEdge:
      return "AddEdge";
    case WalRecordType::kUpdate:
      return "Update";
    case WalRecordType::kRemove:
      return "Remove";
  }
  return "?";
}

/// One logical mutation, self-contained: class names instead of ClassDef
/// pointers, the fully validated row, and the uid the write was assigned.
/// Replaying a record stream through the public GraphDb API reproduces the
/// database on either execution backend. Only the fields relevant to
/// `type` are meaningful:
///   kSetTime: time
///   kAddNode: uid, class_name, row, time
///   kAddEdge: uid, class_name, row, source, target, time
///   kUpdate : uid, changes, time
///   kRemove : uid, time    (cascaded edge deletions are NOT logged; replay
///                           of the node removal reproduces them)
struct WalRecord {
  WalRecordType type = WalRecordType::kSetTime;
  Timestamp time = 0;
  Uid uid = 0;
  std::string class_name;
  std::vector<Value> row;  // layout-aligned with the class's fields()
  Uid source = 0;
  Uid target = 0;
  std::vector<std::pair<int, Value>> changes;  // (field index, new value)
};

class WriteLog {
 public:
  virtual ~WriteLog() = default;

  /// Called by GraphDb under its writer lock after the mutation has been
  /// validated and applied, so records arrive in commit order. A failed
  /// append is returned to the writer as an error; the in-memory write has
  /// already been applied, so the session should be treated as no longer
  /// durable past that point.
  virtual Status Append(const WalRecord& rec) = 0;

  /// Appends every record of one atomic batch (GraphDb::ApplyBatch), still
  /// under the writer lock. Implementations that can do better than N
  /// independent appends — one contiguous segment write, one fsync, one
  /// gap-free publish to replication subscribers — override this; the
  /// default preserves the per-record path.
  virtual Status AppendBatch(const std::vector<WalRecord>& recs) {
    for (const WalRecord& rec : recs) {
      Status st = Append(rec);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  // ---- Semi-synchronous replication (see persist::DurableStore) ----
  //
  // A log that replicates its appends may ask the committing writer to wait
  // for follower acknowledgements — but never under the writer lock, or a
  // slow follower would stall every reader too. GraphDb therefore captures
  // commit_token() while it still holds the lock (so the token covers
  // exactly this commit) and calls WaitCommitted(token) after releasing it.

  /// Opaque high-water mark covering everything appended so far. Zero means
  /// "nothing to wait for"; the default implementation never waits.
  virtual uint64_t commit_token() const { return 0; }

  /// Blocks until the log's replication quorum has acknowledged everything
  /// up to `token`, a configured timeout elapses, or waiting is disabled.
  /// Called WITHOUT the writer lock held; must tolerate concurrent callers.
  virtual void WaitCommitted(uint64_t token) { (void)token; }
};

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_WRITE_LOG_H_
