// ElementVersion and TimeView: the units the storage layer trades in.
//
// Nepal is a transaction-time temporal database: every node/edge is stored
// as one or more *versions*, each valid over a half-open interval of system
// time. A TimeView tells a read which versions it may see:
//   - Current : only open versions (the "current snapshot" table),
//   - AsOf(t) : versions whose interval contains t (timeslice queries),
//   - Range   : versions overlapping [t1, t2) (time-range queries; the
//               executor intersects intervals along each pathway).
//
// A view may additionally carry a *snapshot epoch* (WithEpoch): versions
// born after the epoch are invisible, and versions closed after it are
// still open as of the snapshot. Epoch-stamped views are how readers
// observe a batch-granular commit point without serializing against the
// writer for the whole evaluation (see GraphDb::commit_epoch()).

#ifndef NEPAL_STORAGE_ELEMENT_H_
#define NEPAL_STORAGE_ELEMENT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "common/value.h"
#include "schema/class_def.h"

namespace nepal::storage {

/// Sentinel for "not closed by any commit yet" (open versions).
inline constexpr uint64_t kEpochMax = UINT64_MAX;

/// One version of a node or edge. `fields` is the flattened row aligned with
/// cls->fields(); edges additionally carry endpoint uids. `birth_epoch` /
/// `close_epoch` record which commit epoch opened/closed the version;
/// checkpoint-restored versions carry epoch 0 ("before every snapshot").
struct ElementVersion {
  Uid uid = kInvalidUid;
  const schema::ClassDef* cls = nullptr;
  Interval valid = Interval::All();
  std::vector<Value> fields;
  Uid source = kInvalidUid;  // edges only
  Uid target = kInvalidUid;  // edges only
  uint64_t birth_epoch = 0;
  uint64_t close_epoch = kEpochMax;

  bool is_edge() const { return cls != nullptr && cls->is_edge(); }
  bool is_current() const { return valid.end == kTimestampMax; }
};

class TimeView {
 public:
  enum class Kind { kCurrent, kAsOf, kRange };

  static TimeView Current() { return TimeView(Kind::kCurrent, Interval::All()); }
  static TimeView AsOf(Timestamp t) {
    return TimeView(Kind::kAsOf, Interval::At(t));
  }
  static TimeView Range(Timestamp start, Timestamp end) {
    return TimeView(Kind::kRange, Interval{start, end});
  }
  static TimeView Range(const Interval& iv) {
    return TimeView(Kind::kRange, iv);
  }

  Kind kind() const { return kind_; }
  bool is_current() const { return kind_ == Kind::kCurrent; }
  /// True when the view's *temporal kind* reaches into history. Used by the
  /// optimizer (history-depth cost multipliers) and SQL rendering; storage
  /// probes that must also cover epoch-patched closed versions use
  /// includes_closed() instead.
  bool needs_history() const { return kind_ != Kind::kCurrent; }
  const Interval& range() const { return range_; }

  /// Same view pinned to commit epoch `e` (see GraphDb::commit_epoch()).
  TimeView WithEpoch(uint64_t e) const {
    TimeView v = *this;
    v.epoch_ = e;
    return v;
  }
  bool has_epoch() const { return epoch_ != 0; }
  uint64_t epoch() const { return epoch_; }

  /// True when the view must examine closed versions: historical kinds, or
  /// a snapshot epoch (a version closed after the epoch is still open as of
  /// the snapshot and may live in a history table).
  bool includes_closed() const {
    return kind_ != Kind::kCurrent || epoch_ != 0;
  }

  /// True if a version valid over `iv` is visible under this view.
  bool Admits(const Interval& iv) const {
    switch (kind_) {
      case Kind::kCurrent:
        return iv.end == kTimestampMax;
      case Kind::kAsOf:
      case Kind::kRange:
        return iv.Overlaps(range_);
    }
    return false;
  }

  /// Epoch-aware admission: versions born after the snapshot epoch are
  /// invisible; versions closed after it are treated as still open.
  /// Equivalent to Admits(v.valid) when the view carries no epoch.
  bool AdmitsVersion(const ElementVersion& v) const {
    if (epoch_ == 0) return Admits(v.valid);
    if (v.birth_epoch > epoch_) return false;
    Interval iv = v.valid;
    if (v.close_epoch > epoch_) iv.end = kTimestampMax;
    return Admits(iv);
  }

  /// Admission + emission in one step: sinks `v` if admitted, substituting
  /// a copy whose interval end is patched back to "open" when the version
  /// was closed after the snapshot epoch — so downstream consumers (the
  /// executor's interval intersection, result rendering) see exactly what
  /// a locked read at the snapshot would have. Returns whether it emitted.
  template <typename Fn>
  bool Emit(const ElementVersion& v, Fn&& sink) const {
    if (!AdmitsVersion(v)) return false;
    if (epoch_ != 0 && v.close_epoch > epoch_ && !v.is_current()) {
      ElementVersion patched = v;
      patched.valid.end = kTimestampMax;
      sink(patched);
    } else {
      sink(v);
    }
    return true;
  }

 private:
  TimeView(Kind kind, Interval range) : kind_(kind), range_(range) {}
  Kind kind_;
  Interval range_;
  uint64_t epoch_ = 0;  // 0 = no snapshot epoch (plain locked read)
};

enum class Direction { kOut, kIn, kBoth };

/// A class scan with pushed-down constraints. `cls` is matched
/// polymorphically (the scan covers every transitive subclass).
struct ScanSpec {
  const schema::ClassDef* cls = nullptr;
  std::optional<Uid> uid;  // exact-uid lookup (the `id=` pseudo-field)
  /// Equality on a field of cls's layout, usable by backend indexes.
  std::optional<std::pair<int, Value>> eq;
  /// Residual row filter applied after the pushed-down constraints.
  std::function<bool(const ElementVersion&)> filter;

  bool Matches(const ElementVersion& v) const {
    if (!v.cls->IsSubclassOf(cls)) return false;
    if (uid && v.uid != *uid) return false;
    if (eq && !(v.fields[static_cast<size_t>(eq->first)] == eq->second)) {
      return false;
    }
    return !filter || filter(v);
  }
};

using ElementSink = std::function<void(const ElementVersion&)>;

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_ELEMENT_H_
