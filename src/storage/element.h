// ElementVersion and TimeView: the units the storage layer trades in.
//
// Nepal is a transaction-time temporal database: every node/edge is stored
// as one or more *versions*, each valid over a half-open interval of system
// time. A TimeView tells a read which versions it may see:
//   - Current : only open versions (the "current snapshot" table),
//   - AsOf(t) : versions whose interval contains t (timeslice queries),
//   - Range   : versions overlapping [t1, t2) (time-range queries; the
//               executor intersects intervals along each pathway).

#ifndef NEPAL_STORAGE_ELEMENT_H_
#define NEPAL_STORAGE_ELEMENT_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "common/value.h"
#include "schema/class_def.h"

namespace nepal::storage {

/// One version of a node or edge. `fields` is the flattened row aligned with
/// cls->fields(); edges additionally carry endpoint uids.
struct ElementVersion {
  Uid uid = kInvalidUid;
  const schema::ClassDef* cls = nullptr;
  Interval valid = Interval::All();
  std::vector<Value> fields;
  Uid source = kInvalidUid;  // edges only
  Uid target = kInvalidUid;  // edges only

  bool is_edge() const { return cls != nullptr && cls->is_edge(); }
  bool is_current() const { return valid.end == kTimestampMax; }
};

class TimeView {
 public:
  enum class Kind { kCurrent, kAsOf, kRange };

  static TimeView Current() { return TimeView(Kind::kCurrent, Interval::All()); }
  static TimeView AsOf(Timestamp t) {
    return TimeView(Kind::kAsOf, Interval::At(t));
  }
  static TimeView Range(Timestamp start, Timestamp end) {
    return TimeView(Kind::kRange, Interval{start, end});
  }
  static TimeView Range(const Interval& iv) {
    return TimeView(Kind::kRange, iv);
  }

  Kind kind() const { return kind_; }
  bool is_current() const { return kind_ == Kind::kCurrent; }
  /// True when the view may need closed (historical) versions.
  bool needs_history() const { return kind_ != Kind::kCurrent; }
  const Interval& range() const { return range_; }

  /// True if a version valid over `iv` is visible under this view.
  bool Admits(const Interval& iv) const {
    switch (kind_) {
      case Kind::kCurrent:
        return iv.end == kTimestampMax;
      case Kind::kAsOf:
      case Kind::kRange:
        return iv.Overlaps(range_);
    }
    return false;
  }

 private:
  TimeView(Kind kind, Interval range) : kind_(kind), range_(range) {}
  Kind kind_;
  Interval range_;
};

enum class Direction { kOut, kIn, kBoth };

/// A class scan with pushed-down constraints. `cls` is matched
/// polymorphically (the scan covers every transitive subclass).
struct ScanSpec {
  const schema::ClassDef* cls = nullptr;
  std::optional<Uid> uid;  // exact-uid lookup (the `id=` pseudo-field)
  /// Equality on a field of cls's layout, usable by backend indexes.
  std::optional<std::pair<int, Value>> eq;
  /// Residual row filter applied after the pushed-down constraints.
  std::function<bool(const ElementVersion&)> filter;

  bool Matches(const ElementVersion& v) const {
    if (!v.cls->IsSubclassOf(cls)) return false;
    if (uid && v.uid != *uid) return false;
    if (eq && !(v.fields[static_cast<size_t>(eq->first)] == eq->second)) {
      return false;
    }
    return !filter || filter(v);
  }
};

using ElementSink = std::function<void(const ElementVersion&)>;

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_ELEMENT_H_
