// GraphDb: the graph data management layer.
//
// Sits between applications/loaders and a StorageBackend. Responsibilities
// (Section 3.1 of the paper):
//  - schema validation of every insert/update (strong typing),
//  - allowed-edge enforcement (graph schema),
//  - uid allocation and the global uniqueness constraint,
//  - unique-field constraints,
//  - the transaction-time clock (monotone; settable for replay loads),
//  - cascade of node removal onto incident edges.

#ifndef NEPAL_STORAGE_GRAPHDB_H_
#define NEPAL_STORAGE_GRAPHDB_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>

#include "common/status.h"
#include "schema/record.h"
#include "schema/schema.h"
#include "storage/backend.h"
#include "storage/write_log.h"

namespace nepal::storage {

class GraphDb {
 public:
  GraphDb(schema::SchemaPtr schema, std::unique_ptr<StorageBackend> backend);

  const schema::Schema& schema() const { return *schema_; }
  schema::SchemaPtr schema_ptr() const { return schema_; }
  StorageBackend& backend() { return *backend_; }
  const StorageBackend& backend() const { return *backend_; }

  // ---- Transaction-time clock ----

  /// Transaction time the next write will carry. Starts at
  /// 2017-01-01 00:00:00 and only moves when SetTime advances it, so all
  /// writes of one batch (e.g. one snapshot diff) share an instant.
  Timestamp Now() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return now_;
  }
  /// Moves the clock forward (replay loading). Rejects going backwards.
  Status SetTime(Timestamp t);

  // ---- Write API ----

  /// Inserts a node of class `class_name`; returns its uid.
  Result<Uid> AddNode(const std::string& class_name,
                      const schema::FieldValues& fields);
  /// Inserts an edge from `source` to `target`; both endpoints must
  /// currently exist and the edge must be permitted by an allow rule.
  Result<Uid> AddEdge(const std::string& class_name, Uid source, Uid target,
                      const schema::FieldValues& fields);
  /// Updates fields of a currently-existing element (new version opens).
  Status UpdateElement(Uid uid, const schema::FieldValues& fields);
  /// Deletes an element; deleting a node cascades to its incident edges.
  Status RemoveElement(Uid uid);

  /// Looks up the current version of an element by uid.
  Result<ElementVersion> GetCurrent(Uid uid) const;

  size_t node_count() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return node_count_;
  }
  size_t edge_count() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return edge_count_;
  }

  // ---- Durability (see src/persist) ----

  /// Attaches (or detaches, with nullptr) a write-ahead log. Every
  /// subsequent successful write appends a logical record before the
  /// writer lock is released, so the log carries commits in order. A
  /// failed append is returned to the writer as an error; the in-memory
  /// write has already been applied, so the session should be treated as
  /// no longer durable past that point.
  void set_write_log(WriteLog* log) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    write_log_ = log;
  }
  WriteLog* write_log() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return write_log_;
  }

  /// WAL-replay support: forces the uid allocator so replay reproduces the
  /// original uid sequence (failed writes consumed uids the log never saw).
  /// Rejects moving backwards — a logged uid below the allocator means the
  /// log does not belong to this database state.
  Status SyncNextUid(Uid uid);

  /// Checkpoint-restore support: called on a freshly constructed GraphDb
  /// after the backend has been repopulated (StorageBackend::RestoreChain).
  /// Rebuilds the unique index and node/edge counters from the backend's
  /// current snapshot and forces the clock and uid allocator.
  Status AdoptRecoveredState(Timestamp now, Uid next_uid);

  /// Clock / uid-allocator reads for callers already holding mutex()
  /// shared (the checkpoint writer spans one shared-lock scope over these
  /// and its backend scans). All other callers use Now().
  Timestamp NowLocked() const { return now_; }
  Uid NextUidLocked() const { return next_uid_; }

  // ---- Concurrency ----

  /// Guards the backend and all GraphDb bookkeeping: every write method
  /// takes it exclusively; concurrent readers (the query engine holds it
  /// shared for the whole evaluation) see a consistent store. Exposed so
  /// the engine can span one shared-lock scope over many operator calls —
  /// do not lock it around GraphDb's own methods, they lock internally.
  std::shared_mutex& mutex() const { return mutex_; }

 private:
  /// Class the unique field at layout index `idx` was declared on.
  static const schema::ClassDef* DeclaringClass(const schema::ClassDef* cls,
                                                int idx);
  Status CheckAndIndexUniques(const schema::ClassDef* cls,
                              const std::vector<Value>& row, Uid uid);
  void DropUniques(const ElementVersion& v);
  /// GetCurrent body without locking, for use inside write methods that
  /// already hold `mutex_` exclusively.
  Result<ElementVersion> GetCurrentLocked(Uid uid) const;

  mutable std::shared_mutex mutex_;
  schema::SchemaPtr schema_;
  std::unique_ptr<StorageBackend> backend_;
  WriteLog* write_log_ = nullptr;
  Timestamp now_;
  Uid next_uid_ = 1;
  size_t node_count_ = 0;
  size_t edge_count_ = 0;
  /// (declaring class order, field index, value) -> uid.
  std::map<std::tuple<int, int, Value>, Uid> unique_index_;
};

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_GRAPHDB_H_
