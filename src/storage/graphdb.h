// GraphDb: the graph data management layer.
//
// Sits between applications/loaders and a StorageBackend. Responsibilities
// (Section 3.1 of the paper):
//  - schema validation of every insert/update (strong typing),
//  - allowed-edge enforcement (graph schema),
//  - uid allocation and the global uniqueness constraint,
//  - unique-field constraints,
//  - the transaction-time clock (monotone; settable for replay loads),
//  - cascade of node removal onto incident edges.

#ifndef NEPAL_STORAGE_GRAPHDB_H_
#define NEPAL_STORAGE_GRAPHDB_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "schema/record.h"
#include "schema/schema.h"
#include "storage/backend.h"
#include "storage/write_log.h"

namespace nepal::storage {

/// One deferred write for GraphDb::ApplyBatch. Built via the factory
/// functions; `uid` is an input for Update/Remove and an output (the
/// assigned uid) for AddNode/AddEdge. `forced_uid` pins the allocator the
/// way SyncNextUid does, for WAL replay reproducing original uids.
struct Mutation {
  enum class Kind : uint8_t { kSetTime, kAddNode, kAddEdge, kUpdate, kRemove };

  Kind kind = Kind::kSetTime;
  Timestamp time = 0;             // kSetTime
  std::string class_name;         // kAddNode / kAddEdge
  schema::FieldValues fields;     // kAddNode / kAddEdge / kUpdate
  Uid source = 0;                 // kAddEdge
  Uid target = 0;                 // kAddEdge
  Uid uid = 0;                    // in: kUpdate/kRemove; out: adds
  Uid forced_uid = 0;             // adds: 0 = allocate, else pin allocator
  /// kUpdate replay path: pre-validated (field index, value) changes from a
  /// WAL record, applied verbatim instead of re-validating `fields`.
  std::vector<std::pair<int, Value>> raw_changes;
  bool use_raw_changes = false;

  static Mutation SetTime(Timestamp t) {
    Mutation m;
    m.kind = Kind::kSetTime;
    m.time = t;
    return m;
  }
  static Mutation AddNode(std::string class_name, schema::FieldValues fields) {
    Mutation m;
    m.kind = Kind::kAddNode;
    m.class_name = std::move(class_name);
    m.fields = std::move(fields);
    return m;
  }
  static Mutation AddEdge(std::string class_name, Uid source, Uid target,
                          schema::FieldValues fields) {
    Mutation m;
    m.kind = Kind::kAddEdge;
    m.class_name = std::move(class_name);
    m.source = source;
    m.target = target;
    m.fields = std::move(fields);
    return m;
  }
  static Mutation Update(Uid uid, schema::FieldValues fields) {
    Mutation m;
    m.kind = Kind::kUpdate;
    m.uid = uid;
    m.fields = std::move(fields);
    return m;
  }
  static Mutation Remove(Uid uid) {
    Mutation m;
    m.kind = Kind::kRemove;
    m.uid = uid;
    return m;
  }
};

class GraphDb {
 public:
  GraphDb(schema::SchemaPtr schema, std::unique_ptr<StorageBackend> backend);

  const schema::Schema& schema() const { return *schema_; }
  schema::SchemaPtr schema_ptr() const { return schema_; }
  StorageBackend& backend() { return *backend_; }
  const StorageBackend& backend() const { return *backend_; }

  // ---- Transaction-time clock ----

  /// Transaction time the next write will carry. Starts at
  /// 2017-01-01 00:00:00 and only moves when SetTime advances it, so all
  /// writes of one batch (e.g. one snapshot diff) share an instant.
  Timestamp Now() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return now_;
  }
  /// Moves the clock forward (replay loading). Rejects going backwards.
  Status SetTime(Timestamp t);

  // ---- Write API ----

  /// Inserts a node of class `class_name`; returns its uid.
  Result<Uid> AddNode(const std::string& class_name,
                      const schema::FieldValues& fields);
  /// Inserts an edge from `source` to `target`; both endpoints must
  /// currently exist and the edge must be permitted by an allow rule.
  Result<Uid> AddEdge(const std::string& class_name, Uid source, Uid target,
                      const schema::FieldValues& fields);
  /// Updates fields of a currently-existing element (new version opens).
  Status UpdateElement(Uid uid, const schema::FieldValues& fields);
  /// Deletes an element; deleting a node cascades to its incident edges.
  Status RemoveElement(Uid uid);

  /// Applies N mutations as one atomic group commit: the writer lock is
  /// taken once, every mutation is validated against an overlay of the
  /// batch's own effects BEFORE anything is applied (so a mid-batch
  /// validation failure leaves no partial state), all mutations share one
  /// transaction-time instant per SetTime and one commit epoch (snapshot
  /// readers see all of the batch or none of it), and the WAL receives the
  /// whole batch as one frame group — at most one fsync per batch. Assigned
  /// uids are written back into the adds' `uid` fields.
  Status ApplyBatch(std::span<Mutation> muts);

  /// Looks up the current version of an element by uid.
  Result<ElementVersion> GetCurrent(Uid uid) const;

  // ---- Snapshot epochs ----

  /// Epoch of the latest published commit. Monotone; safe to read without
  /// mutex(). A TimeView pinned to this value (TimeView::WithEpoch) sees
  /// exactly the state a locked read would have seen at capture time, even
  /// while later writers mutate the store — provided each individual
  /// backend probe still synchronizes its memory accesses (the engine
  /// takes brief shared locks per operator call; see EngineOptions::
  /// snapshot_reads).
  uint64_t commit_epoch() const {
    return commit_epoch_.load(std::memory_order_acquire);
  }

  size_t node_count() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return node_count_;
  }
  size_t edge_count() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return edge_count_;
  }

  // ---- Durability (see src/persist) ----

  /// Attaches (or detaches, with nullptr) a write-ahead log. Every
  /// subsequent successful write appends a logical record before the
  /// writer lock is released, so the log carries commits in order. A
  /// failed append is returned to the writer as an error; the in-memory
  /// write has already been applied, so the session should be treated as
  /// no longer durable past that point.
  void set_write_log(WriteLog* log) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    write_log_ = log;
  }
  WriteLog* write_log() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return write_log_;
  }

  // ---- Replica protection (see src/replication) ----

  /// While read-only, every write method fails with kReadOnly unless the
  /// calling thread holds a ReplayScope. A warm-standby follower flips
  /// this on so stray writers cannot diverge it from the primary; only the
  /// replication apply path (which replays shipped WAL records through the
  /// public API) may mutate it. Promotion flips it back off.
  void set_read_only(bool read_only) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    read_only_ = read_only;
  }
  bool read_only() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return read_only_;
  }

  /// Marks the calling thread as the replication/recovery replay thread
  /// for the scope's lifetime, letting its writes through a read-only
  /// database. One replay thread at a time (the apply loop is single-
  /// threaded); scopes do not nest across threads.
  class ReplayScope {
   public:
    explicit ReplayScope(GraphDb& db) : db_(db) {
      db_.replay_thread_.store(std::this_thread::get_id(),
                               std::memory_order_release);
    }
    ~ReplayScope() {
      db_.replay_thread_.store(std::thread::id(), std::memory_order_release);
    }
    ReplayScope(const ReplayScope&) = delete;
    ReplayScope& operator=(const ReplayScope&) = delete;

   private:
    GraphDb& db_;
  };

  /// WAL-replay support: forces the uid allocator so replay reproduces the
  /// original uid sequence (failed writes consumed uids the log never saw).
  /// Rejects moving backwards — a logged uid below the allocator means the
  /// log does not belong to this database state.
  Status SyncNextUid(Uid uid);

  /// Checkpoint-restore support: called on a freshly constructed GraphDb
  /// after the backend has been repopulated (StorageBackend::RestoreChain).
  /// Rebuilds the unique index and node/edge counters from the backend's
  /// current snapshot and forces the clock and uid allocator.
  Status AdoptRecoveredState(Timestamp now, Uid next_uid);

  /// Clock / uid-allocator reads for callers already holding mutex()
  /// shared (the checkpoint writer spans one shared-lock scope over these
  /// and its backend scans). All other callers use Now().
  Timestamp NowLocked() const { return now_; }
  Uid NextUidLocked() const { return next_uid_; }

  // ---- Concurrency ----

  /// Guards the backend and all GraphDb bookkeeping: every write method
  /// takes it exclusively; concurrent readers (the query engine holds it
  /// shared for the whole evaluation) see a consistent store. Exposed so
  /// the engine can span one shared-lock scope over many operator calls —
  /// do not lock it around GraphDb's own methods, they lock internally.
  std::shared_mutex& mutex() const { return mutex_; }

 private:
  /// Class the unique field at layout index `idx` was declared on.
  static const schema::ClassDef* DeclaringClass(const schema::ClassDef* cls,
                                                int idx);
  Status CheckAndIndexUniques(const schema::ClassDef* cls,
                              const std::vector<Value>& row, Uid uid);
  void DropUniques(const ElementVersion& v);
  /// GetCurrent body without locking, for use inside write methods that
  /// already hold `mutex_` exclusively.
  Result<ElementVersion> GetCurrentLocked(Uid uid) const;
  /// Rejects writes on a read-only replica unless the calling thread holds
  /// a ReplayScope. Caller holds `mutex_` exclusively.
  Status CheckWritableLocked() const;

  // Write bodies shared by the single-op API and ApplyBatch. All assume
  // `mutex_` is held exclusively and the backend's write epoch is set;
  // `row`/`changes` are already schema-validated. WAL records for the
  // mutation are appended to `*wal` (only when a write log is attached);
  // the caller ships them — one Append per single op, one AppendBatch per
  // batch.
  Status SetTimeLocked(Timestamp t, std::vector<WalRecord>* wal);
  Result<Uid> AddNodeLocked(const schema::ClassDef* cls,
                            std::vector<Value> row, Uid forced_uid,
                            std::vector<WalRecord>* wal);
  Result<Uid> AddEdgeLocked(const schema::ClassDef* cls, Uid source,
                            Uid target, std::vector<Value> row,
                            Uid forced_uid, std::vector<WalRecord>* wal);
  Status UpdateElementLocked(Uid uid,
                             const std::vector<std::pair<int, Value>>& changes,
                             std::vector<WalRecord>* wal);
  Status RemoveElementLocked(Uid uid, std::vector<WalRecord>* wal);
  /// Allocates the next uid, honoring a replay-forced value (SyncNextUid
  /// semantics). Caller holds `mutex_` exclusively.
  Result<Uid> AllocateUidLocked(Uid forced_uid);
  /// Ships collected WAL records for a single-op write (one Append each).
  Status AppendWalLocked(const std::vector<WalRecord>& wal);

  mutable std::shared_mutex mutex_;
  schema::SchemaPtr schema_;
  std::unique_ptr<StorageBackend> backend_;
  WriteLog* write_log_ = nullptr;
  bool read_only_ = false;
  std::atomic<std::thread::id> replay_thread_{};
  Timestamp now_;
  Uid next_uid_ = 1;
  /// Latest published commit epoch. Writers stamp versions with
  /// commit_epoch_ + 1 under the exclusive lock and publish (store-release)
  /// once the whole write — the whole batch — is applied. Starts at 1 so a
  /// freshly opened database has a valid snapshot epoch and 0 can mean
  /// "no epoch" in TimeView.
  std::atomic<uint64_t> commit_epoch_{1};
  size_t node_count_ = 0;
  size_t edge_count_ = 0;
  /// (declaring class order, field index, value) -> uid.
  std::map<std::tuple<int, int, Value>, Uid> unique_index_;
};

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_GRAPHDB_H_
