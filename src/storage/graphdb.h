// GraphDb: the graph data management layer.
//
// Sits between applications/loaders and a StorageBackend. Responsibilities
// (Section 3.1 of the paper):
//  - schema validation of every insert/update (strong typing),
//  - allowed-edge enforcement (graph schema),
//  - uid allocation and the global uniqueness constraint,
//  - unique-field constraints,
//  - the transaction-time clock (monotone; settable for replay loads),
//  - cascade of node removal onto incident edges.

#ifndef NEPAL_STORAGE_GRAPHDB_H_
#define NEPAL_STORAGE_GRAPHDB_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <tuple>

#include "common/status.h"
#include "schema/record.h"
#include "schema/schema.h"
#include "storage/backend.h"
#include "storage/write_log.h"

namespace nepal::storage {

class GraphDb {
 public:
  GraphDb(schema::SchemaPtr schema, std::unique_ptr<StorageBackend> backend);

  const schema::Schema& schema() const { return *schema_; }
  schema::SchemaPtr schema_ptr() const { return schema_; }
  StorageBackend& backend() { return *backend_; }
  const StorageBackend& backend() const { return *backend_; }

  // ---- Transaction-time clock ----

  /// Transaction time the next write will carry. Starts at
  /// 2017-01-01 00:00:00 and only moves when SetTime advances it, so all
  /// writes of one batch (e.g. one snapshot diff) share an instant.
  Timestamp Now() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return now_;
  }
  /// Moves the clock forward (replay loading). Rejects going backwards.
  Status SetTime(Timestamp t);

  // ---- Write API ----

  /// Inserts a node of class `class_name`; returns its uid.
  Result<Uid> AddNode(const std::string& class_name,
                      const schema::FieldValues& fields);
  /// Inserts an edge from `source` to `target`; both endpoints must
  /// currently exist and the edge must be permitted by an allow rule.
  Result<Uid> AddEdge(const std::string& class_name, Uid source, Uid target,
                      const schema::FieldValues& fields);
  /// Updates fields of a currently-existing element (new version opens).
  Status UpdateElement(Uid uid, const schema::FieldValues& fields);
  /// Deletes an element; deleting a node cascades to its incident edges.
  Status RemoveElement(Uid uid);

  /// Looks up the current version of an element by uid.
  Result<ElementVersion> GetCurrent(Uid uid) const;

  size_t node_count() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return node_count_;
  }
  size_t edge_count() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return edge_count_;
  }

  // ---- Durability (see src/persist) ----

  /// Attaches (or detaches, with nullptr) a write-ahead log. Every
  /// subsequent successful write appends a logical record before the
  /// writer lock is released, so the log carries commits in order. A
  /// failed append is returned to the writer as an error; the in-memory
  /// write has already been applied, so the session should be treated as
  /// no longer durable past that point.
  void set_write_log(WriteLog* log) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    write_log_ = log;
  }
  WriteLog* write_log() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return write_log_;
  }

  // ---- Replica protection (see src/replication) ----

  /// While read-only, every write method fails with kReadOnly unless the
  /// calling thread holds a ReplayScope. A warm-standby follower flips
  /// this on so stray writers cannot diverge it from the primary; only the
  /// replication apply path (which replays shipped WAL records through the
  /// public API) may mutate it. Promotion flips it back off.
  void set_read_only(bool read_only) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    read_only_ = read_only;
  }
  bool read_only() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return read_only_;
  }

  /// Marks the calling thread as the replication/recovery replay thread
  /// for the scope's lifetime, letting its writes through a read-only
  /// database. One replay thread at a time (the apply loop is single-
  /// threaded); scopes do not nest across threads.
  class ReplayScope {
   public:
    explicit ReplayScope(GraphDb& db) : db_(db) {
      db_.replay_thread_.store(std::this_thread::get_id(),
                               std::memory_order_release);
    }
    ~ReplayScope() {
      db_.replay_thread_.store(std::thread::id(), std::memory_order_release);
    }
    ReplayScope(const ReplayScope&) = delete;
    ReplayScope& operator=(const ReplayScope&) = delete;

   private:
    GraphDb& db_;
  };

  /// WAL-replay support: forces the uid allocator so replay reproduces the
  /// original uid sequence (failed writes consumed uids the log never saw).
  /// Rejects moving backwards — a logged uid below the allocator means the
  /// log does not belong to this database state.
  Status SyncNextUid(Uid uid);

  /// Checkpoint-restore support: called on a freshly constructed GraphDb
  /// after the backend has been repopulated (StorageBackend::RestoreChain).
  /// Rebuilds the unique index and node/edge counters from the backend's
  /// current snapshot and forces the clock and uid allocator.
  Status AdoptRecoveredState(Timestamp now, Uid next_uid);

  /// Clock / uid-allocator reads for callers already holding mutex()
  /// shared (the checkpoint writer spans one shared-lock scope over these
  /// and its backend scans). All other callers use Now().
  Timestamp NowLocked() const { return now_; }
  Uid NextUidLocked() const { return next_uid_; }

  // ---- Concurrency ----

  /// Guards the backend and all GraphDb bookkeeping: every write method
  /// takes it exclusively; concurrent readers (the query engine holds it
  /// shared for the whole evaluation) see a consistent store. Exposed so
  /// the engine can span one shared-lock scope over many operator calls —
  /// do not lock it around GraphDb's own methods, they lock internally.
  std::shared_mutex& mutex() const { return mutex_; }

 private:
  /// Class the unique field at layout index `idx` was declared on.
  static const schema::ClassDef* DeclaringClass(const schema::ClassDef* cls,
                                                int idx);
  Status CheckAndIndexUniques(const schema::ClassDef* cls,
                              const std::vector<Value>& row, Uid uid);
  void DropUniques(const ElementVersion& v);
  /// GetCurrent body without locking, for use inside write methods that
  /// already hold `mutex_` exclusively.
  Result<ElementVersion> GetCurrentLocked(Uid uid) const;
  /// Rejects writes on a read-only replica unless the calling thread holds
  /// a ReplayScope. Caller holds `mutex_` exclusively.
  Status CheckWritableLocked() const;

  mutable std::shared_mutex mutex_;
  schema::SchemaPtr schema_;
  std::unique_ptr<StorageBackend> backend_;
  WriteLog* write_log_ = nullptr;
  bool read_only_ = false;
  std::atomic<std::thread::id> replay_thread_{};
  Timestamp now_;
  Uid next_uid_ = 1;
  size_t node_count_ = 0;
  size_t edge_count_ = 0;
  /// (declaring class order, field index, value) -> uid.
  std::map<std::tuple<int, int, Value>, Uid> unique_index_;
};

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_GRAPHDB_H_
