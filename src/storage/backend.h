// StorageBackend: the retargetable seam.
//
// The paper's Nepal translates queries to Gremlin or PostgreSQL; this repo
// implements the same architecture with two in-process engines behind this
// interface (src/graphstore mirrors the Gremlin strategy, src/relational the
// Postgres one). The query translator produces a backend-neutral operator
// DAG; each backend supplies a PathOperatorExecutor (see nepal/operators.h)
// that evaluates Select/Extend/ExtendBlock/Union with its own physical
// strategy, plus the primitive reads declared here.

#ifndef NEPAL_STORAGE_BACKEND_H_
#define NEPAL_STORAGE_BACKEND_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "stats/stats.h"
#include "storage/element.h"

namespace nepal::storage {

class PathOperatorExecutor;

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// "graphstore" or "relational".
  virtual std::string name() const = 0;

  // ---- Write path (called by GraphDb with monotone transaction times) ----

  /// Commit epoch the next write belongs to. GraphDb sets it under the
  /// writer lock before calling the write methods below; backends stamp
  /// every version they open/close with it so epoch-pinned TimeViews can
  /// reconstruct the store as of any published commit (see
  /// TimeView::WithEpoch). One ApplyBatch shares a single epoch, which is
  /// what makes a batch all-or-nothing for snapshot readers.
  void set_write_epoch(uint64_t epoch) { write_epoch_ = epoch; }
  uint64_t write_epoch() const { return write_epoch_; }

  /// Opens a new node version valid from `t`.
  virtual Status InsertNode(Uid uid, const schema::ClassDef* cls,
                            std::vector<Value> row, Timestamp t) = 0;
  virtual Status InsertEdge(Uid uid, const schema::ClassDef* cls,
                            std::vector<Value> row, Uid source, Uid target,
                            Timestamp t) = 0;
  /// Closes the current version at `t` and opens a new one with the given
  /// (field index, value) changes applied.
  virtual Status Update(Uid uid,
                        const std::vector<std::pair<int, Value>>& changes,
                        Timestamp t) = 0;
  /// Closes the current version at `t` (the element stops existing).
  virtual Status Delete(Uid uid, Timestamp t) = 0;

  // ---- Read path ----

  /// Emits every version admitted by `view` that matches `spec`.
  virtual void Scan(const ScanSpec& spec, const TimeView& view,
                    const ElementSink& sink) const = 0;

  /// Emits the version(s) of one element admitted by `view`.
  virtual void Get(Uid uid, const TimeView& view,
                   const ElementSink& sink) const = 0;

  /// Emits edge versions incident to `node` admitted by `view`;
  /// kOut = edges with source == node. `edge_cls` (nullable) restricts to a
  /// class subtree.
  virtual void IncidentEdges(Uid node, Direction dir,
                             const schema::ClassDef* edge_cls,
                             const TimeView& view,
                             const ElementSink& sink) const = 0;

  /// True if a current version of `uid` exists (or existed under `view`).
  virtual bool Exists(Uid uid, const TimeView& view) const = 0;

  // ---- Statistics (anchor costing; "database statistics if available,
  //      otherwise schema hints") ----

  /// Current-snapshot cardinality of a class subtree.
  virtual size_t CountClass(const schema::ClassDef* cls) const = 0;

  /// Estimated number of rows a scan would emit. Implemented once here from
  /// the maintained statistics so both backends cost identically for
  /// identical data: exact per-value counters when available, schema hints
  /// (unique -> 1, equality -> ~10% of the class) otherwise.
  double EstimateScan(const ScanSpec& spec) const;

  /// Incrementally maintained statistics (cardinalities, degrees, value
  /// counters, history depth). Backends update them on every write. Virtual
  /// so locking decorators can defer their consistent stats capture until a
  /// planner actually asks (pre-evaluated queries never do).
  virtual const stats::GraphStats& stats() const { return stats_; }

  // ---- Durability (checkpoint restore; see src/persist) ----

  /// Rebuilds one element's full version chain on a freshly constructed
  /// backend. `chain` is ordered by version start time, versions are
  /// pairwise disjoint, and at most the last one is open. Statistics are
  /// NOT maintained by this call — a checkpoint restores them wholesale via
  /// RestoreStats, which is what lets a cold start skip re-deriving stats
  /// from every element. Chains must be restored in ascending uid order so
  /// physical iteration orders match the original insertion order.
  virtual Status RestoreChain(Uid uid, std::vector<ElementVersion> chain) = 0;

  /// Called once after the last RestoreChain of a recovery. Backends whose
  /// physical iteration order is not a pure function of uid order (the
  /// relational store's current tables reflect update history: an UPDATE
  /// retires the old row and appends the new one) use this to re-establish
  /// the order live execution would have produced, so a restored database
  /// answers queries byte-identically to the original.
  virtual Status FinishRestore() { return Status::OK(); }

  /// Installs statistics deserialized from a checkpoint (pairs with
  /// RestoreChain, which deliberately skips stats maintenance).
  void RestoreStats(stats::GraphStats s) { stats_ = std::move(s); }

  /// Approximate resident bytes (storage-overhead experiments).
  virtual size_t MemoryUsage() const = 0;

  /// Number of stored versions (current + history).
  virtual size_t VersionCount() const = 0;

  // ---- Retargeting ----

  /// The operator executor evaluating pathway plans against this backend.
  /// The default is the step-wise TraverserExecutor; backends with a bulk
  /// execution strategy override this.
  virtual std::unique_ptr<PathOperatorExecutor> CreateExecutor() const;

 protected:
  StorageBackend() = default;
  explicit StorageBackend(const schema::Schema* schema) : stats_(schema) {}

  stats::GraphStats stats_;
  uint64_t write_epoch_ = 0;
};

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_BACKEND_H_
