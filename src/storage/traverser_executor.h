// TraverserExecutor: the step-wise operator executor.
//
// Evaluates Select/Extend over a StorageBackend one traverser (path state)
// at a time, the way the paper's Gremlin target executes: each Extend step
// walks adjacency from every frontier element. Backends with a bulk
// execution strategy (the relational engine) provide their own
// PathOperatorExecutor instead.

#ifndef NEPAL_STORAGE_TRAVERSER_EXECUTOR_H_
#define NEPAL_STORAGE_TRAVERSER_EXECUTOR_H_

#include "storage/backend.h"
#include "storage/pathset.h"

namespace nepal::storage {

class TraverserExecutor : public PathOperatorExecutor {
 public:
  /// `backend` must outlive the executor.
  explicit TraverserExecutor(const StorageBackend* backend)
      : backend_(backend) {}

  PathSet Select(const CompiledAtom& atom, const TimeView& view) override;
  PathSet SelectSeeds(const std::vector<Uid>& nodes,
                      const TimeView& view) override;
  PathSet ExtendAtom(const PathSet& frontier, const CompiledAtom& atom,
                     Direction dir, const TimeView& view) override;
  PathSet FinalizeTail(const PathSet& frontier, const TimeView& view) override;

 private:
  void ExtendByEdgeAtom(const PathState& state, const CompiledAtom& atom,
                        Direction dir, const TimeView& view, PathSet* out);
  void ExtendByNodeAtom(const PathState& state, const CompiledAtom& atom,
                        Direction dir, const TimeView& view, PathSet* out);
  /// Runs the edge-matching step from a state whose frontier is in-path.
  void EdgeStep(const PathState& state, const CompiledAtom& atom,
                Direction dir, const TimeView& view, PathSet* out);

  const StorageBackend* backend_;
};

/// Appends `v` to a copy of `state` if the cycle check and interval
/// intersection admit it; returns false otherwise. Maintains head
/// bookkeeping for seed states. Shared by executors.
bool TryAppendElement(const PathState& state, const ElementVersion& v,
                      PathState* out);

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_TRAVERSER_EXECUTOR_H_
