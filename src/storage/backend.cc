#include "storage/backend.h"

#include "storage/traverser_executor.h"

namespace nepal::storage {

std::unique_ptr<PathOperatorExecutor> StorageBackend::CreateExecutor() const {
  return std::make_unique<TraverserExecutor>(this);
}

double StorageBackend::EstimateScan(const ScanSpec& spec) const {
  if (spec.uid) return 1.0;
  double count = static_cast<double>(CountClass(spec.cls));
  if (spec.eq) {
    const schema::FieldDef& field =
        spec.cls->fields()[static_cast<size_t>(spec.eq->first)];
    if (field.unique) return 1.0;
    // Exact per-value counter maintained by the stats subsystem.
    if (auto exact =
            stats().EqCount(spec.cls, spec.eq->first, spec.eq->second)) {
      return *exact;
    }
    // Schema hint: an equality predicate on a non-unique field is assumed to
    // select ~10% of the class (matches the paper's fallback of using schema
    // hints when statistics are unavailable).
    return count / 10.0 + 1.0;
  }
  return count;
}

}  // namespace nepal::storage
