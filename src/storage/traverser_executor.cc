#include "storage/traverser_executor.h"

namespace nepal::storage {

bool TryAppendElement(const PathState& state, const ElementVersion& v,
                      PathState* out) {
  if (state.Contains(v.uid)) return false;
  Interval iv = state.valid.Intersect(v.valid);
  if (iv.empty()) return false;
  *out = state;
  out->uids.push_back(v.uid);
  out->concepts.push_back(v.cls);
  out->valid = iv;
  if (state.uids.empty()) {
    // First element of a seed-grown path becomes the head.
    out->head_frontier = v.uid;
    out->head_in_path = !v.is_edge();
  }
  return true;
}

PathSet TraverserExecutor::Select(const CompiledAtom& atom,
                                  const TimeView& view) {
  Trace("Select " + atom.ToString());
  PathSet out;
  backend_->Scan(atom.ToScanSpec(), view, [&](const ElementVersion& v) {
    PathState state;
    state.uids.push_back(v.uid);
    state.concepts.push_back(v.cls);
    state.valid = v.valid;
    if (v.is_edge()) {
      state.frontier = v.target;
      state.frontier_in_path = false;
      state.head_frontier = v.source;
      state.head_in_path = false;
    } else {
      state.frontier = v.uid;
      state.frontier_in_path = true;
      state.head_frontier = v.uid;
      state.head_in_path = true;
    }
    out.push_back(std::move(state));
  });
  return out;
}

PathSet TraverserExecutor::SelectSeeds(const std::vector<Uid>& nodes,
                                       const TimeView& view) {
  (void)view;  // visibility of the seed is enforced at first materialization
  Trace("SelectSeeds x" + std::to_string(nodes.size()));
  PathSet out;
  out.reserve(nodes.size());
  for (Uid uid : nodes) {
    PathState state;
    state.frontier = uid;
    state.frontier_in_path = false;
    state.head_frontier = uid;
    state.head_in_path = false;
    out.push_back(std::move(state));
  }
  return out;
}

PathSet TraverserExecutor::ExtendAtom(const PathSet& frontier,
                                      const CompiledAtom& atom, Direction dir,
                                      const TimeView& view) {
  Trace(std::string("Extend ") + (dir == Direction::kOut ? "fwd" : "bwd") +
        " by " + atom.ToString() + " over " + std::to_string(frontier.size()) +
        " paths");
  PathSet out;
  for (const PathState& state : frontier) {
    if (atom.is_edge()) {
      ExtendByEdgeAtom(state, atom, dir, view, &out);
    } else {
      ExtendByNodeAtom(state, atom, dir, view, &out);
    }
  }
  return out;
}

void TraverserExecutor::EdgeStep(const PathState& state,
                                 const CompiledAtom& atom, Direction dir,
                                 const TimeView& view, PathSet* out) {
  backend_->IncidentEdges(
      state.frontier, dir == Direction::kOut ? Direction::kOut : Direction::kIn,
      atom.cls, view, [&](const ElementVersion& e) {
        if (!atom.Matches(e)) return;
        PathState next;
        if (!TryAppendElement(state, e, &next)) return;
        next.frontier = dir == Direction::kOut ? e.target : e.source;
        next.frontier_in_path = false;
        // The far endpoint must not already appear in the path; it will be
        // materialized by a later step, but reject the cycle early.
        if (next.Contains(next.frontier)) return;
        out->push_back(std::move(next));
      });
}

void TraverserExecutor::ExtendByEdgeAtom(const PathState& state,
                                         const CompiledAtom& atom,
                                         Direction dir, const TimeView& view,
                                         PathSet* out) {
  if (state.frontier_in_path) {
    EdgeStep(state, atom, dir, view, out);
    return;
  }
  // Edge atom right after an edge atom (or on a seed): materialize the
  // implicit, unconstrained node between them first.
  backend_->Get(state.frontier, view, [&](const ElementVersion& v) {
    PathState with_node;
    if (!TryAppendElement(state, v, &with_node)) return;
    with_node.frontier = v.uid;
    with_node.frontier_in_path = true;
    EdgeStep(with_node, atom, dir, view, out);
  });
}

void TraverserExecutor::ExtendByNodeAtom(const PathState& state,
                                         const CompiledAtom& atom,
                                         Direction dir, const TimeView& view,
                                         PathSet* out) {
  if (!state.frontier_in_path) {
    // The frontier node itself must satisfy the atom.
    backend_->Get(state.frontier, view, [&](const ElementVersion& v) {
      if (!atom.Matches(v)) return;
      PathState next;
      if (!TryAppendElement(state, v, &next)) return;
      next.frontier = v.uid;
      next.frontier_in_path = true;
      out->push_back(std::move(next));
    });
    return;
  }
  // Node atom right after a node atom: traverse one implicit,
  // unconstrained edge, then match the far node.
  backend_->IncidentEdges(
      state.frontier, dir == Direction::kOut ? Direction::kOut : Direction::kIn,
      /*edge_cls=*/nullptr, view, [&](const ElementVersion& e) {
        Uid far = dir == Direction::kOut ? e.target : e.source;
        if (state.Contains(far)) return;
        PathState with_edge;
        if (!TryAppendElement(state, e, &with_edge)) return;
        backend_->Get(far, view, [&](const ElementVersion& v) {
          if (!atom.Matches(v)) return;
          PathState next;
          if (!TryAppendElement(with_edge, v, &next)) return;
          next.frontier = far;
          next.frontier_in_path = true;
          out->push_back(std::move(next));
        });
      });
}

PathSet TraverserExecutor::FinalizeTail(const PathSet& frontier,
                                        const TimeView& view) {
  PathSet out;
  for (const PathState& state : frontier) {
    if (state.frontier_in_path) {
      out.push_back(state);
      continue;
    }
    // Materialize the implicit final node.
    backend_->Get(state.frontier, view, [&](const ElementVersion& v) {
      PathState next;
      if (!TryAppendElement(state, v, &next)) return;
      next.frontier = v.uid;
      next.frontier_in_path = true;
      out.push_back(std::move(next));
    });
  }
  return out;
}

}  // namespace nepal::storage
