#include "storage/graphdb.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nepal::storage {

namespace {
// 2017-01-01 00:00:00 UTC in microseconds; matches the paper's example era.
constexpr Timestamp kEpoch2017 = 1483228800LL * 1000000;

// Cached registry pointers for the group-commit fast path (the registry
// lookup takes a lock; the pointers are stable for the process lifetime).
struct BatchMetrics {
  obs::Histogram* size = nullptr;
  obs::Counter* committed = nullptr;
  obs::Counter* failed_validation = nullptr;
  obs::Gauge* commit_epoch = nullptr;
};

BatchMetrics& BatchMetricsInstance() {
  static BatchMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    static const std::vector<uint64_t> kBatchSizeBounds{
        1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096};
    BatchMetrics m;
    m.size = registry.GetHistogram("nepal.batch.size", kBatchSizeBounds);
    m.committed = registry.GetCounter("nepal.batch.committed");
    m.failed_validation =
        registry.GetCounter("nepal.batch.failed_validation");
    m.commit_epoch = registry.GetGauge("nepal.batch.commit_epoch");
    return m;
  }();
  return metrics;
}
}  // namespace

GraphDb::GraphDb(schema::SchemaPtr schema,
                 std::unique_ptr<StorageBackend> backend)
    : schema_(std::move(schema)),
      backend_(std::move(backend)),
      now_(kEpoch2017) {}

Status GraphDb::CheckWritableLocked() const {
  if (read_only_ &&
      replay_thread_.load(std::memory_order_acquire) !=
          std::this_thread::get_id()) {
    return Status::ReadOnly(
        "database is a read-only replica; writes must arrive via "
        "replication (promote the follower to accept writes)");
  }
  return Status::OK();
}

Status GraphDb::AppendWalLocked(const std::vector<WalRecord>& wal) {
  if (write_log_ == nullptr) return Status::OK();
  for (const WalRecord& rec : wal) {
    NEPAL_RETURN_NOT_OK(write_log_->Append(rec));
  }
  return Status::OK();
}

Status GraphDb::SetTimeLocked(Timestamp t, std::vector<WalRecord>* wal) {
  if (t < now_) {
    return Status::InvalidArgument(
        "transaction time must be monotone: cannot move clock from " +
        FormatTimestamp(now_) + " back to " + FormatTimestamp(t));
  }
  now_ = t;
  if (write_log_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kSetTime;
    rec.time = t;
    wal->push_back(std::move(rec));
  }
  return Status::OK();
}

Status GraphDb::SetTime(Timestamp t) {
  obs::ScopedTrace trace(obs::Tracer::Global().StartTrace("set_time"));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  std::vector<WalRecord> wal;
  NEPAL_RETURN_NOT_OK(SetTimeLocked(t, &wal));
  NEPAL_RETURN_NOT_OK(AppendWalLocked(wal));
  WriteLog* log = write_log_;
  const uint64_t token =
      log != nullptr && !wal.empty() ? log->commit_token() : 0;
  lock.unlock();
  if (token != 0) log->WaitCommitted(token);
  return Status::OK();
}

Status GraphDb::SyncNextUid(Uid uid) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (uid < next_uid_) {
    return Status::Corruption(
        "logged uid " + std::to_string(uid) +
        " is below the allocator (next " + std::to_string(next_uid_) +
        "): the log does not belong to this database state");
  }
  next_uid_ = uid;
  return Status::OK();
}

Result<Uid> GraphDb::AllocateUidLocked(Uid forced_uid) {
  if (forced_uid != 0) {
    if (forced_uid < next_uid_) {
      return Status::Corruption(
          "logged uid " + std::to_string(forced_uid) +
          " is below the allocator (next " + std::to_string(next_uid_) +
          "): the log does not belong to this database state");
    }
    next_uid_ = forced_uid;
  }
  return next_uid_++;
}

Status GraphDb::AdoptRecoveredState(Timestamp now, Uid next_uid) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  unique_index_.clear();
  node_count_ = 0;
  edge_count_ = 0;
  Status index_status = Status::OK();
  Uid max_uid = 0;
  ScanSpec everything;
  everything.cls = schema_->node_root();
  auto account = [&](const ElementVersion& v) {
    max_uid = std::max(max_uid, v.uid);
    if (v.is_edge()) {
      ++edge_count_;
    } else {
      ++node_count_;
    }
    if (index_status.ok()) {
      index_status = CheckAndIndexUniques(v.cls, v.fields, v.uid);
    }
  };
  backend_->Scan(everything, TimeView::Current(), account);
  everything.cls = schema_->edge_root();
  backend_->Scan(everything, TimeView::Current(), account);
  NEPAL_RETURN_NOT_OK(index_status);
  if (next_uid <= max_uid) {
    return Status::Corruption(
        "checkpoint next_uid " + std::to_string(next_uid) +
        " does not clear the restored uids (max " + std::to_string(max_uid) +
        ")");
  }
  now_ = now;
  next_uid_ = next_uid;
  return Status::OK();
}

const schema::ClassDef* GraphDb::DeclaringClass(const schema::ClassDef* cls,
                                                int idx) {
  const schema::ClassDef* declaring = cls;
  while (declaring->parent() != nullptr &&
         static_cast<size_t>(idx) <
             declaring->parent()->fields().size()) {
    declaring = declaring->parent();
  }
  return declaring;
}

Status GraphDb::CheckAndIndexUniques(const schema::ClassDef* cls,
                                     const std::vector<Value>& row, Uid uid) {
  for (size_t i = 0; i < cls->fields().size(); ++i) {
    if (!cls->fields()[i].unique || row[i].is_null()) continue;
    const schema::ClassDef* declaring =
        DeclaringClass(cls, static_cast<int>(i));
    auto key = std::make_tuple(declaring->order(), static_cast<int>(i), row[i]);
    auto [it, inserted] = unique_index_.emplace(key, uid);
    if (!inserted && it->second != uid) {
      return Status::AlreadyExists(
          "unique constraint on " + declaring->name() + "." +
          cls->fields()[i].name + ": value " + row[i].ToString() +
          " already used by uid " + std::to_string(it->second));
    }
    it->second = uid;
  }
  return Status::OK();
}

void GraphDb::DropUniques(const ElementVersion& v) {
  for (size_t i = 0; i < v.cls->fields().size(); ++i) {
    if (!v.cls->fields()[i].unique || v.fields[i].is_null()) continue;
    const schema::ClassDef* declaring =
        DeclaringClass(v.cls, static_cast<int>(i));
    unique_index_.erase(
        std::make_tuple(declaring->order(), static_cast<int>(i), v.fields[i]));
  }
}

Result<Uid> GraphDb::AddNodeLocked(const schema::ClassDef* cls,
                                   std::vector<Value> row, Uid forced_uid,
                                   std::vector<WalRecord>* wal) {
  NEPAL_ASSIGN_OR_RETURN(Uid uid, AllocateUidLocked(forced_uid));
  NEPAL_RETURN_NOT_OK(CheckAndIndexUniques(cls, row, uid));
  WalRecord rec;
  if (write_log_ != nullptr) {
    rec.type = WalRecordType::kAddNode;
    rec.time = now_;
    rec.uid = uid;
    rec.class_name = cls->name();
    rec.row = row;  // copy: the backend takes ownership of `row` below
  }
  NEPAL_RETURN_NOT_OK(backend_->InsertNode(uid, cls, std::move(row), now_));
  ++node_count_;
  if (write_log_ != nullptr) {
    wal->push_back(std::move(rec));
  }
  return uid;
}

Result<Uid> GraphDb::AddNode(const std::string& class_name,
                             const schema::FieldValues& fields) {
  NEPAL_ASSIGN_OR_RETURN(const schema::ClassDef* cls,
                         schema_->GetClass(class_name));
  if (!cls->is_node()) {
    return Status::SchemaViolation("class '" + class_name +
                                   "' is an edge class, not a node class");
  }
  obs::ScopedTrace trace(obs::Tracer::Global().StartTrace("add_node"));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  NEPAL_ASSIGN_OR_RETURN(std::vector<Value> row,
                         schema::ValidateRecord(*schema_, *cls, fields));
  const uint64_t epoch = commit_epoch_.load(std::memory_order_relaxed) + 1;
  backend_->set_write_epoch(epoch);
  std::vector<WalRecord> wal;
  NEPAL_ASSIGN_OR_RETURN(Uid uid,
                         AddNodeLocked(cls, std::move(row), 0, &wal));
  commit_epoch_.store(epoch, std::memory_order_release);
  NEPAL_RETURN_NOT_OK(AppendWalLocked(wal));
  WriteLog* log = write_log_;
  const uint64_t token =
      log != nullptr && !wal.empty() ? log->commit_token() : 0;
  lock.unlock();
  if (token != 0) log->WaitCommitted(token);
  return uid;
}

Result<Uid> GraphDb::AddEdgeLocked(const schema::ClassDef* cls, Uid source,
                                   Uid target, std::vector<Value> row,
                                   Uid forced_uid,
                                   std::vector<WalRecord>* wal) {
  NEPAL_ASSIGN_OR_RETURN(ElementVersion src, GetCurrentLocked(source));
  NEPAL_ASSIGN_OR_RETURN(ElementVersion tgt, GetCurrentLocked(target));
  if (src.is_edge() || tgt.is_edge()) {
    return Status::SchemaViolation("edge endpoints must be nodes");
  }
  if (!schema_->EdgeAllowed(cls, src.cls, tgt.cls)) {
    return Status::SchemaViolation(
        "the graph schema permits no " + cls->name() + " edge from " +
        src.cls->name() + " to " + tgt.cls->name());
  }
  NEPAL_ASSIGN_OR_RETURN(Uid uid, AllocateUidLocked(forced_uid));
  NEPAL_RETURN_NOT_OK(CheckAndIndexUniques(cls, row, uid));
  WalRecord rec;
  if (write_log_ != nullptr) {
    rec.type = WalRecordType::kAddEdge;
    rec.time = now_;
    rec.uid = uid;
    rec.class_name = cls->name();
    rec.row = row;  // copy: the backend takes ownership of `row` below
    rec.source = source;
    rec.target = target;
  }
  NEPAL_RETURN_NOT_OK(
      backend_->InsertEdge(uid, cls, std::move(row), source, target, now_));
  ++edge_count_;
  if (write_log_ != nullptr) {
    wal->push_back(std::move(rec));
  }
  return uid;
}

Result<Uid> GraphDb::AddEdge(const std::string& class_name, Uid source,
                             Uid target, const schema::FieldValues& fields) {
  NEPAL_ASSIGN_OR_RETURN(const schema::ClassDef* cls,
                         schema_->GetClass(class_name));
  if (!cls->is_edge()) {
    return Status::SchemaViolation("class '" + class_name +
                                   "' is a node class, not an edge class");
  }
  obs::ScopedTrace trace(obs::Tracer::Global().StartTrace("add_edge"));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  NEPAL_ASSIGN_OR_RETURN(ElementVersion src, GetCurrentLocked(source));
  NEPAL_ASSIGN_OR_RETURN(ElementVersion tgt, GetCurrentLocked(target));
  if (src.is_edge() || tgt.is_edge()) {
    return Status::SchemaViolation("edge endpoints must be nodes");
  }
  if (!schema_->EdgeAllowed(cls, src.cls, tgt.cls)) {
    return Status::SchemaViolation(
        "the graph schema permits no " + cls->name() + " edge from " +
        src.cls->name() + " to " + tgt.cls->name());
  }
  NEPAL_ASSIGN_OR_RETURN(std::vector<Value> row,
                         schema::ValidateRecord(*schema_, *cls, fields));
  const uint64_t epoch = commit_epoch_.load(std::memory_order_relaxed) + 1;
  backend_->set_write_epoch(epoch);
  std::vector<WalRecord> wal;
  NEPAL_ASSIGN_OR_RETURN(
      Uid uid, AddEdgeLocked(cls, source, target, std::move(row), 0, &wal));
  commit_epoch_.store(epoch, std::memory_order_release);
  NEPAL_RETURN_NOT_OK(AppendWalLocked(wal));
  WriteLog* log = write_log_;
  const uint64_t token =
      log != nullptr && !wal.empty() ? log->commit_token() : 0;
  lock.unlock();
  if (token != 0) log->WaitCommitted(token);
  return uid;
}

Status GraphDb::UpdateElementLocked(
    Uid uid, const std::vector<std::pair<int, Value>>& changes,
    std::vector<WalRecord>* wal) {
  NEPAL_ASSIGN_OR_RETURN(ElementVersion cur, GetCurrentLocked(uid));
  // Re-check unique constraints for changed unique fields.
  for (const auto& [idx, value] : changes) {
    const schema::FieldDef& f = cur.cls->fields()[static_cast<size_t>(idx)];
    if (!f.unique) continue;
    const schema::ClassDef* declaring = DeclaringClass(cur.cls, idx);
    auto key = std::make_tuple(declaring->order(), idx, value);
    auto it = unique_index_.find(key);
    if (it != unique_index_.end() && it->second != uid) {
      return Status::AlreadyExists("unique constraint on " +
                                   declaring->name() + "." + f.name +
                                   ": value " + value.ToString() +
                                   " already used by uid " +
                                   std::to_string(it->second));
    }
  }
  for (const auto& [idx, value] : changes) {
    const schema::FieldDef& f = cur.cls->fields()[static_cast<size_t>(idx)];
    if (!f.unique) continue;
    const schema::ClassDef* declaring = DeclaringClass(cur.cls, idx);
    if (!cur.fields[static_cast<size_t>(idx)].is_null()) {
      unique_index_.erase(std::make_tuple(
          declaring->order(), idx, cur.fields[static_cast<size_t>(idx)]));
    }
    if (!value.is_null()) {
      unique_index_[std::make_tuple(declaring->order(), idx, value)] = uid;
    }
  }
  NEPAL_RETURN_NOT_OK(backend_->Update(uid, changes, now_));
  if (write_log_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kUpdate;
    rec.time = now_;
    rec.uid = uid;
    rec.changes = changes;
    wal->push_back(std::move(rec));
  }
  return Status::OK();
}

Status GraphDb::UpdateElement(Uid uid, const schema::FieldValues& fields) {
  obs::ScopedTrace trace(obs::Tracer::Global().StartTrace("update"));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  NEPAL_ASSIGN_OR_RETURN(ElementVersion cur, GetCurrentLocked(uid));
  NEPAL_ASSIGN_OR_RETURN(auto changes,
                         schema::ValidateUpdate(*schema_, *cur.cls, fields));
  const uint64_t epoch = commit_epoch_.load(std::memory_order_relaxed) + 1;
  backend_->set_write_epoch(epoch);
  std::vector<WalRecord> wal;
  NEPAL_RETURN_NOT_OK(UpdateElementLocked(uid, changes, &wal));
  commit_epoch_.store(epoch, std::memory_order_release);
  NEPAL_RETURN_NOT_OK(AppendWalLocked(wal));
  WriteLog* log = write_log_;
  const uint64_t token =
      log != nullptr && !wal.empty() ? log->commit_token() : 0;
  lock.unlock();
  if (token != 0) log->WaitCommitted(token);
  return Status::OK();
}

Status GraphDb::RemoveElementLocked(Uid uid, std::vector<WalRecord>* wal) {
  NEPAL_ASSIGN_OR_RETURN(ElementVersion cur, GetCurrentLocked(uid));
  if (!cur.is_edge()) {
    // Cascade: a node's incident edges cannot outlive it.
    std::vector<ElementVersion> incident;
    backend_->IncidentEdges(uid, Direction::kBoth, nullptr,
                            TimeView::Current(),
                            [&](const ElementVersion& e) {
                              incident.push_back(e);
                            });
    for (const ElementVersion& e : incident) {
      DropUniques(e);
      NEPAL_RETURN_NOT_OK(backend_->Delete(e.uid, now_));
      --edge_count_;
    }
  }
  DropUniques(cur);
  NEPAL_RETURN_NOT_OK(backend_->Delete(uid, now_));
  if (cur.is_edge()) {
    --edge_count_;
  } else {
    --node_count_;
  }
  if (write_log_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kRemove;
    rec.time = now_;
    rec.uid = uid;
    wal->push_back(std::move(rec));
  }
  return Status::OK();
}

Status GraphDb::RemoveElement(Uid uid) {
  obs::ScopedTrace trace(obs::Tracer::Global().StartTrace("remove"));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  const uint64_t epoch = commit_epoch_.load(std::memory_order_relaxed) + 1;
  backend_->set_write_epoch(epoch);
  std::vector<WalRecord> wal;
  NEPAL_RETURN_NOT_OK(RemoveElementLocked(uid, &wal));
  commit_epoch_.store(epoch, std::memory_order_release);
  NEPAL_RETURN_NOT_OK(AppendWalLocked(wal));
  WriteLog* log = write_log_;
  const uint64_t token =
      log != nullptr && !wal.empty() ? log->commit_token() : 0;
  lock.unlock();
  if (token != 0) log->WaitCommitted(token);
  return Status::OK();
}

Status GraphDb::ApplyBatch(std::span<Mutation> muts) {
  if (muts.empty()) return Status::OK();
  // Root span of the commit-to-visible trace. Children added below and by
  // the durable layer (via the ambient context) decompose commit latency
  // into lock-wait / validate / apply / wal.encode / wal.write / wal.fsync
  // / publish; the follower's wire and apply segments join over the wire.
  obs::ScopedTrace trace(obs::Tracer::Global().StartTrace("apply_batch"));
  obs::Trace* tr = trace.trace();
  const uint64_t t_lock = tr ? obs::TraceNowNs() : 0;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (tr) {
    tr->AddSpan(tr->root_span(), "lock_wait", obs::TraceNowNs() - t_lock);
  }
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  BatchMetrics& metrics = BatchMetricsInstance();
  metrics.size->Observe(muts.size());

  // ---- Phase 1: validate every mutation against an overlay of the batch's
  // own effects. Nothing — backend, counters, unique index, clock, uid
  // allocator — is touched, so any failure here returns with the database
  // exactly as it was.
  struct SimElement {
    const schema::ClassDef* cls = nullptr;
    std::vector<Value> fields;
    Uid source = 0;
    Uid target = 0;
  };
  struct Prepared {
    std::vector<Value> row;                      // adds
    std::vector<std::pair<int, Value>> changes;  // updates
  };
  using UniqueKey = std::tuple<int, int, Value>;
  std::vector<Prepared> prepared(muts.size());
  std::map<Uid, SimElement> sim_live;      // created/updated in this batch
  std::set<Uid> sim_removed;               // removed (incl. cascades)
  std::map<UniqueKey, Uid> unique_added;   // claimed by this batch
  std::set<UniqueKey> unique_dropped;      // released by this batch
  Timestamp sim_now = now_;
  Uid sim_next = next_uid_;

  auto sim_get = [&](Uid uid) -> std::optional<SimElement> {
    if (sim_removed.count(uid) != 0) return std::nullopt;
    auto it = sim_live.find(uid);
    if (it != sim_live.end()) return it->second;
    Result<ElementVersion> cur = GetCurrentLocked(uid);
    if (!cur.ok()) return std::nullopt;
    SimElement e;
    e.cls = cur.value().cls;
    e.fields = cur.value().fields;
    e.source = cur.value().source;
    e.target = cur.value().target;
    return e;
  };
  auto unique_holder = [&](const UniqueKey& key) -> std::optional<Uid> {
    auto it = unique_added.find(key);
    if (it != unique_added.end()) return it->second;
    if (unique_dropped.count(key) != 0) return std::nullopt;
    auto base = unique_index_.find(key);
    if (base != unique_index_.end()) return base->second;
    return std::nullopt;
  };
  auto sim_claim_uniques = [&](const schema::ClassDef* cls,
                               const std::vector<Value>& row,
                               Uid uid) -> Status {
    for (size_t i = 0; i < cls->fields().size(); ++i) {
      if (!cls->fields()[i].unique || row[i].is_null()) continue;
      const schema::ClassDef* declaring =
          DeclaringClass(cls, static_cast<int>(i));
      UniqueKey key{declaring->order(), static_cast<int>(i), row[i]};
      std::optional<Uid> holder = unique_holder(key);
      if (holder && *holder != uid) {
        return Status::AlreadyExists(
            "unique constraint on " + declaring->name() + "." +
            cls->fields()[i].name + ": value " + row[i].ToString() +
            " already used by uid " + std::to_string(*holder));
      }
      unique_added[key] = uid;
      unique_dropped.erase(key);
    }
    return Status::OK();
  };
  auto sim_drop_uniques = [&](const SimElement& e) {
    for (size_t i = 0; i < e.cls->fields().size(); ++i) {
      if (!e.cls->fields()[i].unique || e.fields[i].is_null()) continue;
      const schema::ClassDef* declaring =
          DeclaringClass(e.cls, static_cast<int>(i));
      UniqueKey key{declaring->order(), static_cast<int>(i), e.fields[i]};
      unique_added.erase(key);
      unique_dropped.insert(key);
    }
  };
  auto sim_alloc = [&](Uid forced) -> Result<Uid> {
    if (forced != 0) {
      if (forced < sim_next) {
        return Status::Corruption(
            "logged uid " + std::to_string(forced) +
            " is below the allocator (next " + std::to_string(sim_next) +
            "): the log does not belong to this database state");
      }
      sim_next = forced;
    }
    return sim_next++;
  };
  const uint64_t t_validate = tr ? obs::TraceNowNs() : 0;
  auto fail = [&](size_t i, const Status& st) {
    BatchMetricsInstance().failed_validation->Add();
    if (tr) {
      tr->AddSpan(tr->root_span(), "validate",
                  obs::TraceNowNs() - t_validate);
    }
    return Status(st.code(), "batch mutation #" + std::to_string(i) + ": " +
                                 st.message());
  };

  for (size_t i = 0; i < muts.size(); ++i) {
    const Mutation& m = muts[i];
    switch (m.kind) {
      case Mutation::Kind::kSetTime: {
        if (m.time < sim_now) {
          return fail(i, Status::InvalidArgument(
                             "transaction time must be monotone: cannot move "
                             "clock from " +
                             FormatTimestamp(sim_now) + " back to " +
                             FormatTimestamp(m.time)));
        }
        sim_now = m.time;
        break;
      }
      case Mutation::Kind::kAddNode: {
        Result<const schema::ClassDef*> clsr = schema_->GetClass(m.class_name);
        if (!clsr.ok()) return fail(i, clsr.status());
        const schema::ClassDef* cls = clsr.value();
        if (!cls->is_node()) {
          return fail(i, Status::SchemaViolation(
                             "class '" + m.class_name +
                             "' is an edge class, not a node class"));
        }
        Result<std::vector<Value>> rowr =
            schema::ValidateRecord(*schema_, *cls, m.fields);
        if (!rowr.ok()) return fail(i, rowr.status());
        Result<Uid> uidr = sim_alloc(m.forced_uid);
        if (!uidr.ok()) return fail(i, uidr.status());
        Status st = sim_claim_uniques(cls, rowr.value(), uidr.value());
        if (!st.ok()) return fail(i, st);
        SimElement e;
        e.cls = cls;
        e.fields = rowr.value();
        sim_live[uidr.value()] = std::move(e);
        prepared[i].row = std::move(rowr.value());
        break;
      }
      case Mutation::Kind::kAddEdge: {
        Result<const schema::ClassDef*> clsr = schema_->GetClass(m.class_name);
        if (!clsr.ok()) return fail(i, clsr.status());
        const schema::ClassDef* cls = clsr.value();
        if (!cls->is_edge()) {
          return fail(i, Status::SchemaViolation(
                             "class '" + m.class_name +
                             "' is a node class, not an edge class"));
        }
        std::optional<SimElement> src = sim_get(m.source);
        std::optional<SimElement> tgt = sim_get(m.target);
        if (!src) {
          return fail(i, Status::NotFound("no current element with uid " +
                                          std::to_string(m.source)));
        }
        if (!tgt) {
          return fail(i, Status::NotFound("no current element with uid " +
                                          std::to_string(m.target)));
        }
        if (src->cls->is_edge() || tgt->cls->is_edge()) {
          return fail(i,
                      Status::SchemaViolation("edge endpoints must be nodes"));
        }
        if (!schema_->EdgeAllowed(cls, src->cls, tgt->cls)) {
          return fail(i, Status::SchemaViolation(
                             "the graph schema permits no " + cls->name() +
                             " edge from " + src->cls->name() + " to " +
                             tgt->cls->name()));
        }
        Result<std::vector<Value>> rowr =
            schema::ValidateRecord(*schema_, *cls, m.fields);
        if (!rowr.ok()) return fail(i, rowr.status());
        Result<Uid> uidr = sim_alloc(m.forced_uid);
        if (!uidr.ok()) return fail(i, uidr.status());
        Status st = sim_claim_uniques(cls, rowr.value(), uidr.value());
        if (!st.ok()) return fail(i, st);
        SimElement e;
        e.cls = cls;
        e.fields = rowr.value();
        e.source = m.source;
        e.target = m.target;
        sim_live[uidr.value()] = std::move(e);
        prepared[i].row = std::move(rowr.value());
        break;
      }
      case Mutation::Kind::kUpdate: {
        std::optional<SimElement> cur = sim_get(m.uid);
        if (!cur) {
          return fail(i, Status::NotFound("no current element with uid " +
                                          std::to_string(m.uid)));
        }
        std::vector<std::pair<int, Value>> changes;
        if (m.use_raw_changes) {
          for (const auto& [idx, value] : m.raw_changes) {
            if (idx < 0 ||
                static_cast<size_t>(idx) >= cur->cls->fields().size()) {
              return fail(i, Status::Corruption(
                                 "update change index " +
                                 std::to_string(idx) + " out of range for " +
                                 cur->cls->name()));
            }
          }
          changes = m.raw_changes;
        } else {
          Result<std::vector<std::pair<int, Value>>> chr =
              schema::ValidateUpdate(*schema_, *cur->cls, m.fields);
          if (!chr.ok()) return fail(i, chr.status());
          changes = std::move(chr.value());
        }
        for (const auto& [idx, value] : changes) {
          const schema::FieldDef& f =
              cur->cls->fields()[static_cast<size_t>(idx)];
          if (!f.unique) continue;
          const schema::ClassDef* declaring = DeclaringClass(cur->cls, idx);
          UniqueKey key{declaring->order(), idx, value};
          std::optional<Uid> holder = unique_holder(key);
          if (holder && *holder != m.uid) {
            return fail(i, Status::AlreadyExists(
                               "unique constraint on " + declaring->name() +
                               "." + f.name + ": value " + value.ToString() +
                               " already used by uid " +
                               std::to_string(*holder)));
          }
        }
        for (const auto& [idx, value] : changes) {
          const schema::FieldDef& f =
              cur->cls->fields()[static_cast<size_t>(idx)];
          if (!f.unique) continue;
          const schema::ClassDef* declaring = DeclaringClass(cur->cls, idx);
          if (!cur->fields[static_cast<size_t>(idx)].is_null()) {
            UniqueKey old_key{declaring->order(), idx,
                              cur->fields[static_cast<size_t>(idx)]};
            unique_added.erase(old_key);
            unique_dropped.insert(old_key);
          }
          if (!value.is_null()) {
            UniqueKey key{declaring->order(), idx, value};
            unique_added[key] = m.uid;
            unique_dropped.erase(key);
          }
        }
        SimElement next = *cur;
        for (const auto& [idx, value] : changes) {
          next.fields[static_cast<size_t>(idx)] = value;
        }
        sim_live[m.uid] = std::move(next);
        prepared[i].changes = std::move(changes);
        break;
      }
      case Mutation::Kind::kRemove: {
        std::optional<SimElement> cur = sim_get(m.uid);
        if (!cur) {
          return fail(i, Status::NotFound("no current element with uid " +
                                          std::to_string(m.uid)));
        }
        if (cur->cls->is_node()) {
          // Cascade: backend-current incident edges still live under the
          // overlay, plus edges this batch itself added touching the node.
          std::set<Uid> cascade;
          backend_->IncidentEdges(m.uid, Direction::kBoth, nullptr,
                                  TimeView::Current(),
                                  [&](const ElementVersion& e) {
                                    if (sim_removed.count(e.uid) == 0) {
                                      cascade.insert(e.uid);
                                    }
                                  });
          for (const auto& [euid, e] : sim_live) {
            if (e.cls->is_edge() &&
                (e.source == m.uid || e.target == m.uid)) {
              cascade.insert(euid);
            }
          }
          for (Uid euid : cascade) {
            std::optional<SimElement> edge = sim_get(euid);
            if (!edge) continue;
            sim_drop_uniques(*edge);
            sim_removed.insert(euid);
            sim_live.erase(euid);
          }
        }
        sim_drop_uniques(*cur);
        sim_removed.insert(m.uid);
        sim_live.erase(m.uid);
        break;
      }
    }
  }

  if (tr) {
    tr->AddSpan(tr->root_span(), "validate", obs::TraceNowNs() - t_validate);
  }

  // ---- Phase 2: apply. The overlay proved every mutation valid, so the
  // helpers below are expected to be infallible; a failure means the
  // simulation diverged (a bug) and is surfaced as Internal with the
  // applied prefix's WAL records still shipped so the log matches memory.
  const uint64_t t_apply = tr ? obs::TraceNowNs() : 0;
  const uint64_t epoch = commit_epoch_.load(std::memory_order_relaxed) + 1;
  backend_->set_write_epoch(epoch);
  std::vector<WalRecord> wal;
  if (write_log_ != nullptr) wal.reserve(muts.size());
  Status apply = Status::OK();
  for (size_t i = 0; i < muts.size() && apply.ok(); ++i) {
    Mutation& m = muts[i];
    switch (m.kind) {
      case Mutation::Kind::kSetTime:
        apply = SetTimeLocked(m.time, &wal);
        break;
      case Mutation::Kind::kAddNode: {
        Result<Uid> uid =
            AddNodeLocked(schema_->GetClass(m.class_name).value(),
                          std::move(prepared[i].row), m.forced_uid, &wal);
        if (uid.ok()) {
          m.uid = uid.value();
        } else {
          apply = uid.status();
        }
        break;
      }
      case Mutation::Kind::kAddEdge: {
        Result<Uid> uid = AddEdgeLocked(
            schema_->GetClass(m.class_name).value(), m.source, m.target,
            std::move(prepared[i].row), m.forced_uid, &wal);
        if (uid.ok()) {
          m.uid = uid.value();
        } else {
          apply = uid.status();
        }
        break;
      }
      case Mutation::Kind::kUpdate:
        apply = UpdateElementLocked(m.uid, prepared[i].changes, &wal);
        break;
      case Mutation::Kind::kRemove:
        apply = RemoveElementLocked(m.uid, &wal);
        break;
    }
  }
  commit_epoch_.store(epoch, std::memory_order_release);
  metrics.commit_epoch->Set(static_cast<int64_t>(epoch));
  if (tr) {
    tr->AddSpan(tr->root_span(), "apply", obs::TraceNowNs() - t_apply);
  }
  if (apply.ok()) {
    metrics.committed->Add();
  } else {
    apply = Status::Internal(
        "batch apply diverged from validation (state may be partial): " +
        apply.message());
  }
  if (write_log_ != nullptr && !wal.empty()) {
    Status shipped = write_log_->AppendBatch(wal);
    if (apply.ok()) apply = shipped;
  }
  WriteLog* log = write_log_;
  const uint64_t token =
      apply.ok() && log != nullptr && !wal.empty() ? log->commit_token() : 0;
  lock.unlock();
  if (token != 0) log->WaitCommitted(token);
  return apply;
}

Result<ElementVersion> GraphDb::GetCurrent(Uid uid) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return GetCurrentLocked(uid);
}

Result<ElementVersion> GraphDb::GetCurrentLocked(Uid uid) const {
  ElementVersion out;
  bool found = false;
  backend_->Get(uid, TimeView::Current(), [&](const ElementVersion& v) {
    out = v;
    found = true;
  });
  if (!found) {
    return Status::NotFound("no current element with uid " +
                            std::to_string(uid));
  }
  return out;
}

}  // namespace nepal::storage
