#include "storage/graphdb.h"

#include <algorithm>
#include <mutex>
#include <vector>

namespace nepal::storage {

namespace {
// 2017-01-01 00:00:00 UTC in microseconds; matches the paper's example era.
constexpr Timestamp kEpoch2017 = 1483228800LL * 1000000;
}  // namespace

GraphDb::GraphDb(schema::SchemaPtr schema,
                 std::unique_ptr<StorageBackend> backend)
    : schema_(std::move(schema)),
      backend_(std::move(backend)),
      now_(kEpoch2017) {}

Status GraphDb::CheckWritableLocked() const {
  if (read_only_ &&
      replay_thread_.load(std::memory_order_acquire) !=
          std::this_thread::get_id()) {
    return Status::ReadOnly(
        "database is a read-only replica; writes must arrive via "
        "replication (promote the follower to accept writes)");
  }
  return Status::OK();
}

Status GraphDb::SetTime(Timestamp t) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  if (t < now_) {
    return Status::InvalidArgument(
        "transaction time must be monotone: cannot move clock from " +
        FormatTimestamp(now_) + " back to " + FormatTimestamp(t));
  }
  now_ = t;
  if (write_log_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kSetTime;
    rec.time = t;
    NEPAL_RETURN_NOT_OK(write_log_->Append(rec));
  }
  return Status::OK();
}

Status GraphDb::SyncNextUid(Uid uid) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (uid < next_uid_) {
    return Status::Corruption(
        "logged uid " + std::to_string(uid) +
        " is below the allocator (next " + std::to_string(next_uid_) +
        "): the log does not belong to this database state");
  }
  next_uid_ = uid;
  return Status::OK();
}

Status GraphDb::AdoptRecoveredState(Timestamp now, Uid next_uid) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  unique_index_.clear();
  node_count_ = 0;
  edge_count_ = 0;
  Status index_status = Status::OK();
  Uid max_uid = 0;
  ScanSpec everything;
  everything.cls = schema_->node_root();
  auto account = [&](const ElementVersion& v) {
    max_uid = std::max(max_uid, v.uid);
    if (v.is_edge()) {
      ++edge_count_;
    } else {
      ++node_count_;
    }
    if (index_status.ok()) {
      index_status = CheckAndIndexUniques(v.cls, v.fields, v.uid);
    }
  };
  backend_->Scan(everything, TimeView::Current(), account);
  everything.cls = schema_->edge_root();
  backend_->Scan(everything, TimeView::Current(), account);
  NEPAL_RETURN_NOT_OK(index_status);
  if (next_uid <= max_uid) {
    return Status::Corruption(
        "checkpoint next_uid " + std::to_string(next_uid) +
        " does not clear the restored uids (max " + std::to_string(max_uid) +
        ")");
  }
  now_ = now;
  next_uid_ = next_uid;
  return Status::OK();
}

const schema::ClassDef* GraphDb::DeclaringClass(const schema::ClassDef* cls,
                                                int idx) {
  const schema::ClassDef* declaring = cls;
  while (declaring->parent() != nullptr &&
         static_cast<size_t>(idx) <
             declaring->parent()->fields().size()) {
    declaring = declaring->parent();
  }
  return declaring;
}

Status GraphDb::CheckAndIndexUniques(const schema::ClassDef* cls,
                                     const std::vector<Value>& row, Uid uid) {
  for (size_t i = 0; i < cls->fields().size(); ++i) {
    if (!cls->fields()[i].unique || row[i].is_null()) continue;
    const schema::ClassDef* declaring =
        DeclaringClass(cls, static_cast<int>(i));
    auto key = std::make_tuple(declaring->order(), static_cast<int>(i), row[i]);
    auto [it, inserted] = unique_index_.emplace(key, uid);
    if (!inserted && it->second != uid) {
      return Status::AlreadyExists(
          "unique constraint on " + declaring->name() + "." +
          cls->fields()[i].name + ": value " + row[i].ToString() +
          " already used by uid " + std::to_string(it->second));
    }
    it->second = uid;
  }
  return Status::OK();
}

void GraphDb::DropUniques(const ElementVersion& v) {
  for (size_t i = 0; i < v.cls->fields().size(); ++i) {
    if (!v.cls->fields()[i].unique || v.fields[i].is_null()) continue;
    const schema::ClassDef* declaring =
        DeclaringClass(v.cls, static_cast<int>(i));
    unique_index_.erase(
        std::make_tuple(declaring->order(), static_cast<int>(i), v.fields[i]));
  }
}

Result<Uid> GraphDb::AddNode(const std::string& class_name,
                             const schema::FieldValues& fields) {
  NEPAL_ASSIGN_OR_RETURN(const schema::ClassDef* cls,
                         schema_->GetClass(class_name));
  if (!cls->is_node()) {
    return Status::SchemaViolation("class '" + class_name +
                                   "' is an edge class, not a node class");
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  NEPAL_ASSIGN_OR_RETURN(std::vector<Value> row,
                         schema::ValidateRecord(*schema_, *cls, fields));
  Uid uid = next_uid_++;
  NEPAL_RETURN_NOT_OK(CheckAndIndexUniques(cls, row, uid));
  WalRecord rec;
  if (write_log_ != nullptr) {
    rec.type = WalRecordType::kAddNode;
    rec.time = now_;
    rec.uid = uid;
    rec.class_name = cls->name();
    rec.row = row;  // copy: the backend takes ownership of `row` below
  }
  NEPAL_RETURN_NOT_OK(backend_->InsertNode(uid, cls, std::move(row), now_));
  ++node_count_;
  if (write_log_ != nullptr) {
    NEPAL_RETURN_NOT_OK(write_log_->Append(rec));
  }
  return uid;
}

Result<Uid> GraphDb::AddEdge(const std::string& class_name, Uid source,
                             Uid target, const schema::FieldValues& fields) {
  NEPAL_ASSIGN_OR_RETURN(const schema::ClassDef* cls,
                         schema_->GetClass(class_name));
  if (!cls->is_edge()) {
    return Status::SchemaViolation("class '" + class_name +
                                   "' is a node class, not an edge class");
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  NEPAL_ASSIGN_OR_RETURN(ElementVersion src, GetCurrentLocked(source));
  NEPAL_ASSIGN_OR_RETURN(ElementVersion tgt, GetCurrentLocked(target));
  if (src.is_edge() || tgt.is_edge()) {
    return Status::SchemaViolation("edge endpoints must be nodes");
  }
  if (!schema_->EdgeAllowed(cls, src.cls, tgt.cls)) {
    return Status::SchemaViolation(
        "the graph schema permits no " + cls->name() + " edge from " +
        src.cls->name() + " to " + tgt.cls->name());
  }
  NEPAL_ASSIGN_OR_RETURN(std::vector<Value> row,
                         schema::ValidateRecord(*schema_, *cls, fields));
  Uid uid = next_uid_++;
  NEPAL_RETURN_NOT_OK(CheckAndIndexUniques(cls, row, uid));
  WalRecord rec;
  if (write_log_ != nullptr) {
    rec.type = WalRecordType::kAddEdge;
    rec.time = now_;
    rec.uid = uid;
    rec.class_name = cls->name();
    rec.row = row;  // copy: the backend takes ownership of `row` below
    rec.source = source;
    rec.target = target;
  }
  NEPAL_RETURN_NOT_OK(
      backend_->InsertEdge(uid, cls, std::move(row), source, target, now_));
  ++edge_count_;
  if (write_log_ != nullptr) {
    NEPAL_RETURN_NOT_OK(write_log_->Append(rec));
  }
  return uid;
}

Status GraphDb::UpdateElement(Uid uid, const schema::FieldValues& fields) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  NEPAL_ASSIGN_OR_RETURN(ElementVersion cur, GetCurrentLocked(uid));
  NEPAL_ASSIGN_OR_RETURN(auto changes,
                         schema::ValidateUpdate(*schema_, *cur.cls, fields));
  // Re-check unique constraints for changed unique fields.
  for (const auto& [idx, value] : changes) {
    const schema::FieldDef& f = cur.cls->fields()[static_cast<size_t>(idx)];
    if (!f.unique) continue;
    const schema::ClassDef* declaring = DeclaringClass(cur.cls, idx);
    auto key = std::make_tuple(declaring->order(), idx, value);
    auto it = unique_index_.find(key);
    if (it != unique_index_.end() && it->second != uid) {
      return Status::AlreadyExists("unique constraint on " +
                                   declaring->name() + "." + f.name +
                                   ": value " + value.ToString() +
                                   " already used by uid " +
                                   std::to_string(it->second));
    }
  }
  for (const auto& [idx, value] : changes) {
    const schema::FieldDef& f = cur.cls->fields()[static_cast<size_t>(idx)];
    if (!f.unique) continue;
    const schema::ClassDef* declaring = DeclaringClass(cur.cls, idx);
    if (!cur.fields[static_cast<size_t>(idx)].is_null()) {
      unique_index_.erase(std::make_tuple(
          declaring->order(), idx, cur.fields[static_cast<size_t>(idx)]));
    }
    if (!value.is_null()) {
      unique_index_[std::make_tuple(declaring->order(), idx, value)] = uid;
    }
  }
  NEPAL_RETURN_NOT_OK(backend_->Update(uid, changes, now_));
  if (write_log_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kUpdate;
    rec.time = now_;
    rec.uid = uid;
    rec.changes = changes;
    NEPAL_RETURN_NOT_OK(write_log_->Append(rec));
  }
  return Status::OK();
}

Status GraphDb::RemoveElement(Uid uid) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  NEPAL_RETURN_NOT_OK(CheckWritableLocked());
  NEPAL_ASSIGN_OR_RETURN(ElementVersion cur, GetCurrentLocked(uid));
  if (!cur.is_edge()) {
    // Cascade: a node's incident edges cannot outlive it.
    std::vector<ElementVersion> incident;
    backend_->IncidentEdges(uid, Direction::kBoth, nullptr,
                            TimeView::Current(),
                            [&](const ElementVersion& e) {
                              incident.push_back(e);
                            });
    for (const ElementVersion& e : incident) {
      DropUniques(e);
      NEPAL_RETURN_NOT_OK(backend_->Delete(e.uid, now_));
      --edge_count_;
    }
  }
  DropUniques(cur);
  NEPAL_RETURN_NOT_OK(backend_->Delete(uid, now_));
  if (cur.is_edge()) {
    --edge_count_;
  } else {
    --node_count_;
  }
  if (write_log_ != nullptr) {
    WalRecord rec;
    rec.type = WalRecordType::kRemove;
    rec.time = now_;
    rec.uid = uid;
    NEPAL_RETURN_NOT_OK(write_log_->Append(rec));
  }
  return Status::OK();
}

Result<ElementVersion> GraphDb::GetCurrent(Uid uid) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return GetCurrentLocked(uid);
}

Result<ElementVersion> GraphDb::GetCurrentLocked(Uid uid) const {
  ElementVersion out;
  bool found = false;
  backend_->Get(uid, TimeView::Current(), [&](const ElementVersion& v) {
    out = v;
    found = true;
  });
  if (!found) {
    return Status::NotFound("no current element with uid " +
                            std::to_string(uid));
  }
  return out;
}

}  // namespace nepal::storage
