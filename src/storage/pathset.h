// Pathways under construction, compiled atoms, and the retargetable
// operator-executor interface.
//
// A query plan is a DAG of Select / Extend / ExtendBlock / Union operators
// over *pathway states*. A PathState mirrors the paper's TEMP-table layout:
// `uids` is the uid_list, `concepts` the concept_list, and `frontier` the
// curr_uid — the open node at the growing end of the path. Both execution
// backends implement PathOperatorExecutor: the graphstore with per-traverser
// adjacency steps, the relational engine with bulk hash joins that also
// render themselves to SQL.
//
// Extension semantics (the paper's four-way concatenation, Section 3.3):
//  - consuming a node atom right after a node atom traverses one *implicit,
//    unconstrained* edge (which is recorded in the path),
//  - consuming an edge atom right after an edge atom materializes the
//    implicit node between them,
//  - an RPE that starts/ends with an edge atom gets implicit endpoint nodes,
//  - paths never repeat an element (the uid_list cycle check).

#ifndef NEPAL_STORAGE_PATHSET_H_
#define NEPAL_STORAGE_PATHSET_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/element.h"

namespace nepal::storage {

/// One comparison against a field of the atom's class. `field_index == -1`
/// addresses the `id` pseudo-field (the element uid). A non-empty `subpath`
/// digs into structured data: composite (data_type) members and map keys,
/// e.g. `Router(config.mgmt.vrf='oam')`. (List/set elements are not
/// addressable by predicate.)
struct FieldCondition {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

  int field_index = -1;
  std::string field_name;  // for rendering
  std::vector<std::string> subpath;
  Op op = Op::kEq;
  Value value;

  bool Eval(const ElementVersion& v) const;
  std::string ToString() const;
};

/// A resolved RPE atom: class (matched over its whole subtree) plus field
/// conditions. E.g. VM(status='Green').
struct CompiledAtom {
  const schema::ClassDef* cls = nullptr;
  std::vector<FieldCondition> conditions;
  /// Index into `conditions` of the equality the optimizer chose to push
  /// into the ScanSpec (predicate-pushdown rewrite). -1 keeps the default
  /// behaviour: the first pushable equality wins.
  int pushdown_condition = -1;

  bool is_edge() const { return cls->is_edge(); }
  bool Matches(const ElementVersion& v) const;

  /// Scan with id/equality conditions pushed down and the rest residual.
  ScanSpec ToScanSpec() const;

  std::string ToString() const;
};

/// A pathway being built. Grows at the tail; `frontier` is the open node
/// there. `frontier_in_path` distinguishes the two traverser states:
/// after a node atom the frontier is already recorded in `uids`; after an
/// edge atom it is the edge's far endpoint, not yet recorded.
struct PathState {
  std::vector<Uid> uids;
  std::vector<const schema::ClassDef*> concepts;
  Interval valid = Interval::All();  // running intersection of versions
  Uid frontier = kInvalidUid;
  bool frontier_in_path = false;
  /// The open node at the fixed (head) end, used when the path is reversed
  /// to grow the prefix side.
  Uid head_frontier = kInvalidUid;
  bool head_in_path = false;

  bool Contains(Uid uid) const {
    for (Uid u : uids) {
      if (u == uid) return true;
    }
    return false;
  }

  /// Swaps head and tail: reverses uids/concepts and exchanges the frontier
  /// bookkeeping. Used to grow the prefix side of an anchored plan.
  PathState Reversed() const;

  /// Key identifying the state for deduplication.
  std::string DedupKey() const;

  std::string ToString() const;
};

using PathSet = std::vector<PathState>;

/// Removes duplicate states (same uids, frontier and interval), keeping the
/// first occurrence. The surviving set is input-order independent; the
/// output order is not.
void DedupPaths(PathSet* paths);

/// Sorts states into canonical (DedupKey) order and removes duplicates.
/// Unlike DedupPaths the result — including its order — is fully
/// independent of the input order, which makes merged shard outputs of the
/// parallel executor deterministic and lets tests compare path sets across
/// different anchor choices byte-for-byte.
void CanonicalizePaths(PathSet* paths);

/// The retargetable operator set. One instance per (backend, query).
class PathOperatorExecutor {
 public:
  virtual ~PathOperatorExecutor() = default;

  /// Anchor evaluation: single-element states for every element matching
  /// the atom under `view`.
  virtual PathSet Select(const CompiledAtom& atom, const TimeView& view) = 0;

  /// Seed states for imported anchors (join-provided node uids). A seed has
  /// an empty uid list; the first atom consumed decides whether the seed
  /// node is matched directly (node atom) or becomes an implicit endpoint
  /// (edge atom).
  virtual PathSet SelectSeeds(const std::vector<Uid>& nodes,
                              const TimeView& view) = 0;

  /// Extends every state by one atom. kOut grows along edge direction
  /// (source -> target), kIn against it.
  virtual PathSet ExtendAtom(const PathSet& frontier, const CompiledAtom& atom,
                             Direction dir, const TimeView& view) = 0;

  /// Repetition block [a1|...|an]{min,max}: returns the union of frontiers
  /// after k iterations for every k in [min, max] (including the input
  /// frontier when min == 0). The payload is restricted to an alternation
  /// of atoms, as in the paper's ExtendBlock. The default implementation
  /// loops over ExtendAtom; backends may specialize.
  virtual PathSet ExtendBlock(const PathSet& frontier,
                              const std::vector<CompiledAtom>& alternatives,
                              int min_rep, int max_rep, Direction dir,
                              const TimeView& view);

  /// Closes the growing end: if the last consumed atom was an edge, the
  /// frontier node is materialized as the implicit final node.
  virtual PathSet FinalizeTail(const PathSet& frontier,
                               const TimeView& view) = 0;

  // ---- Legacy operator tracing (EXPLAIN VERBOSE support) ----
  // Structured per-operator stats (obs::QueryStats, surfaced by EXPLAIN
  // and EXPLAIN ANALYZE) merge associatively and work under any
  // parallelism; this string trace is kept only for EXPLAIN VERBOSE,
  // whose rendered operator/SQL line sequence is meaningful precisely
  // because it reflects serial execution order.
  void EnableTrace(bool on) { trace_enabled_ = on; }
  /// Tracing appends to a shared per-executor buffer in execution order,
  /// so traced (EXPLAIN VERBOSE) plan evaluation must fall back to serial
  /// execution while it is on.
  bool trace_enabled() const { return trace_enabled_; }
  const std::vector<std::string>& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

 protected:
  void Trace(std::string line) {
    if (trace_enabled_) trace_.push_back(std::move(line));
  }
  bool trace_enabled_ = false;

 private:
  std::vector<std::string> trace_;
};

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_PATHSET_H_
