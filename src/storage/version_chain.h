// VersionChain: the per-element transaction-time version list shared by
// storage backends. Versions are ordered by start time and pairwise
// disjoint; at most the last one is open (end == kTimestampMax).

#ifndef NEPAL_STORAGE_VERSION_CHAIN_H_
#define NEPAL_STORAGE_VERSION_CHAIN_H_

#include <vector>

#include "common/status.h"
#include "storage/element.h"

namespace nepal::storage {

class VersionChain {
 public:
  /// The open version, or nullptr if the element is currently deleted.
  const ElementVersion* Current() const {
    if (versions_.empty() || !versions_.back().is_current()) return nullptr;
    return &versions_.back();
  }

  /// Appends a new open version starting at `t`, stamped as born by commit
  /// `epoch` (0 = restored/pre-epoch). Fails if one is open or if `t`
  /// precedes the last closed version's end.
  Status Open(ElementVersion v, Timestamp t, uint64_t epoch = 0) {
    if (Current() != nullptr) {
      return Status::AlreadyExists("uid " + std::to_string(v.uid) +
                                   " already has an open version");
    }
    if (!versions_.empty() && versions_.back().valid.end > t) {
      return Status::InvalidArgument("non-monotone version open for uid " +
                                     std::to_string(v.uid));
    }
    v.valid = Interval{t, kTimestampMax};
    v.birth_epoch = epoch;
    v.close_epoch = kEpochMax;
    versions_.push_back(std::move(v));
    return Status::OK();
  }

  /// Closes the open version at `t`, stamped as closed by commit `epoch`.
  Status Close(Timestamp t, uint64_t epoch = 0) {
    if (Current() == nullptr) {
      return Status::NotFound("no open version to close");
    }
    if (t <= versions_.back().valid.start) {
      // A version inserted and deleted at the same instant never existed;
      // drop it entirely rather than keep an empty interval.
      versions_.pop_back();
      return Status::OK();
    }
    versions_.back().valid.end = t;
    versions_.back().close_epoch = epoch;
    return Status::OK();
  }

  /// Emits every version admitted by `view` (at most one for Current/AsOf).
  void ForEach(const TimeView& view, const ElementSink& sink) const {
    if (view.is_current() && !view.has_epoch()) {
      if (const ElementVersion* cur = Current()) sink(*cur);
      return;
    }
    for (const ElementVersion& v : versions_) {
      view.Emit(v, sink);
    }
  }

  const std::vector<ElementVersion>& versions() const { return versions_; }
  bool empty() const { return versions_.empty(); }

  size_t MemoryUsage() const {
    size_t bytes = sizeof(VersionChain);
    for (const ElementVersion& v : versions_) {
      bytes += sizeof(ElementVersion);
      for (const Value& val : v.fields) bytes += val.MemoryUsage();
    }
    return bytes;
  }

 private:
  std::vector<ElementVersion> versions_;
};

}  // namespace nepal::storage

#endif  // NEPAL_STORAGE_VERSION_CHAIN_H_
