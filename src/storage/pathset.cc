#include "storage/pathset.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace nepal::storage {

bool FieldCondition::Eval(const ElementVersion& v) const {
  int cmp;
  if (field_index < 0) {
    // `id` pseudo-field.
    int64_t uid = static_cast<int64_t>(v.uid);
    cmp = Value(uid).Compare(value);
  } else {
    const Value* field = &v.fields[static_cast<size_t>(field_index)];
    // Structured-data access: walk composite members / map keys.
    for (const std::string& key : subpath) {
      if (field->kind() != ValueKind::kMap) return false;
      const ValueMap& map = field->AsMap();
      auto it = map.find(key);
      if (it == map.end()) return false;
      field = &it->second;
    }
    if (field->is_null()) return false;  // null satisfies no comparison
    cmp = field->Compare(value);
  }
  switch (op) {
    case Op::kEq:
      return cmp == 0;
    case Op::kNe:
      return cmp != 0;
    case Op::kLt:
      return cmp < 0;
    case Op::kLe:
      return cmp <= 0;
    case Op::kGt:
      return cmp > 0;
    case Op::kGe:
      return cmp >= 0;
  }
  return false;
}

std::string FieldCondition::ToString() const {
  const char* op_str = "=";
  switch (op) {
    case Op::kEq:
      op_str = "=";
      break;
    case Op::kNe:
      op_str = "<>";
      break;
    case Op::kLt:
      op_str = "<";
      break;
    case Op::kLe:
      op_str = "<=";
      break;
    case Op::kGt:
      op_str = ">";
      break;
    case Op::kGe:
      op_str = ">=";
      break;
  }
  std::string path = field_index < 0 ? std::string("id") : field_name;
  for (const std::string& key : subpath) path += "." + key;
  return path + op_str + value.ToString();
}

bool CompiledAtom::Matches(const ElementVersion& v) const {
  if (!v.cls->IsSubclassOf(cls)) return false;
  for (const FieldCondition& cond : conditions) {
    if (!cond.Eval(v)) return false;
  }
  return true;
}

ScanSpec CompiledAtom::ToScanSpec() const {
  ScanSpec spec;
  spec.cls = cls;
  std::vector<FieldCondition> residual;
  auto pushable_eq = [](const FieldCondition& cond) {
    return cond.op == FieldCondition::Op::kEq && cond.field_index >= 0 &&
           cond.subpath.empty();
  };
  // The optimizer may have chosen which equality to push (the most
  // selective one); otherwise the first pushable equality wins.
  const FieldCondition* chosen = nullptr;
  if (pushdown_condition >= 0 &&
      static_cast<size_t>(pushdown_condition) < conditions.size() &&
      pushable_eq(conditions[static_cast<size_t>(pushdown_condition)])) {
    chosen = &conditions[static_cast<size_t>(pushdown_condition)];
  }
  for (const FieldCondition& cond : conditions) {
    if (cond.op == FieldCondition::Op::kEq && cond.field_index < 0 &&
        !spec.uid && cond.value.kind() == ValueKind::kInt &&
        cond.value.AsInt() >= 0) {
      spec.uid = static_cast<Uid>(cond.value.AsInt());
      continue;
    }
    if (pushable_eq(cond) && !spec.eq &&
        (chosen == nullptr || chosen == &cond)) {
      spec.eq = std::make_pair(cond.field_index, cond.value);
      continue;
    }
    residual.push_back(cond);
  }
  if (!residual.empty()) {
    spec.filter = [residual](const ElementVersion& v) {
      for (const FieldCondition& cond : residual) {
        if (!cond.Eval(v)) return false;
      }
      return true;
    };
  }
  return spec;
}

std::string CompiledAtom::ToString() const {
  std::string out = cls->name() + "(";
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) out += ", ";
    out += conditions[i].ToString();
  }
  out += ")";
  return out;
}

PathState PathState::Reversed() const {
  PathState rev;
  rev.uids.assign(uids.rbegin(), uids.rend());
  rev.concepts.assign(concepts.rbegin(), concepts.rend());
  rev.valid = valid;
  rev.frontier = head_frontier;
  rev.frontier_in_path = head_in_path;
  rev.head_frontier = frontier;
  rev.head_in_path = frontier_in_path;
  return rev;
}

std::string PathState::DedupKey() const {
  std::string key;
  key.reserve(uids.size() * 8 + 24);
  auto put = [&key](uint64_t v) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (Uid u : uids) put(u);
  put(frontier);
  put(static_cast<uint64_t>(frontier_in_path));
  put(static_cast<uint64_t>(valid.start));
  put(static_cast<uint64_t>(valid.end));
  return key;
}

std::string PathState::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < uids.size(); ++i) {
    if (i > 0) out += ", ";
    out += concepts[i]->name() + "#" + std::to_string(uids[i]);
  }
  out += "]";
  if (!frontier_in_path && frontier != kInvalidUid) {
    out += "~>" + std::to_string(frontier);
  }
  return out;
}

void DedupPaths(PathSet* paths) {
  std::unordered_set<std::string> seen;
  seen.reserve(paths->size());
  PathSet out;
  out.reserve(paths->size());
  for (PathState& state : *paths) {
    if (seen.insert(state.DedupKey()).second) {
      out.push_back(std::move(state));
    }
  }
  *paths = std::move(out);
}

void CanonicalizePaths(PathSet* paths) {
  std::vector<std::pair<std::string, size_t>> keys;
  keys.reserve(paths->size());
  for (size_t i = 0; i < paths->size(); ++i) {
    keys.emplace_back((*paths)[i].DedupKey(), i);
  }
  std::sort(keys.begin(), keys.end());
  PathSet out;
  out.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0 && keys[i].first == keys[i - 1].first) continue;
    out.push_back(std::move((*paths)[keys[i].second]));
  }
  *paths = std::move(out);
}

PathSet PathOperatorExecutor::ExtendBlock(
    const PathSet& frontier, const std::vector<CompiledAtom>& alternatives,
    int min_rep, int max_rep, Direction dir, const TimeView& view) {
  Trace("ExtendBlock{" + std::to_string(min_rep) + "," +
        std::to_string(max_rep) + "} x" +
        std::to_string(alternatives.size()) + " alternatives");
  PathSet collected;
  PathSet current = frontier;
  if (min_rep == 0) {
    collected.insert(collected.end(), current.begin(), current.end());
  }
  for (int k = 1; k <= max_rep && !current.empty(); ++k) {
    PathSet next;
    for (const CompiledAtom& atom : alternatives) {
      PathSet branch = ExtendAtom(current, atom, dir, view);
      next.insert(next.end(), branch.begin(), branch.end());
    }
    DedupPaths(&next);
    current = std::move(next);
    if (k >= min_rep) {
      collected.insert(collected.end(), current.begin(), current.end());
    }
  }
  DedupPaths(&collected);
  return collected;
}

}  // namespace nepal::storage
