#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>

#include "common/binary.h"
#include "persist/crc32c.h"

namespace nepal::persist {

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

void EncodeChain(Uid uid, const std::vector<storage::ElementVersion>& chain,
                 std::string* out) {
  PutFixed64(out, uid);
  PutString(out, chain.front().cls->name());
  PutFixed64(out, chain.front().source);
  PutFixed64(out, chain.front().target);
  PutFixed32(out, static_cast<uint32_t>(chain.size()));
  for (const storage::ElementVersion& v : chain) {
    PutFixedI64(out, v.valid.start);
    PutFixedI64(out, v.valid.end);
    PutFixed32(out, static_cast<uint32_t>(v.fields.size()));
    for (const Value& f : v.fields) f.EncodeBinary(out);
  }
}

}  // namespace

std::string EncodeCheckpointLocked(const storage::GraphDb& db,
                                   uint64_t fingerprint, uint64_t wal_seq) {
  // Gather every version ever stored. Relational scans emit current rows
  // before history rows, so chains are re-sorted by start time below.
  std::map<Uid, std::vector<storage::ElementVersion>> chains;
  const storage::TimeView everything =
      storage::TimeView::Range(Interval::All());
  storage::ScanSpec spec;
  const auto collect = [&chains](const storage::ElementVersion& v) {
    chains[v.uid].push_back(v);
  };
  spec.cls = db.schema().node_root();
  db.backend().Scan(spec, everything, collect);
  spec.cls = db.schema().edge_root();
  db.backend().Scan(spec, everything, collect);

  std::string out(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutFixed8(&out, kCheckpointFormatVersion);
  PutFixed64(&out, fingerprint);
  PutFixed64(&out, wal_seq);
  PutFixedI64(&out, db.NowLocked());
  PutFixed64(&out, db.NextUidLocked());
  PutFixed64(&out, chains.size());
  for (auto& [uid, chain] : chains) {
    std::sort(chain.begin(), chain.end(),
              [](const storage::ElementVersion& a,
                 const storage::ElementVersion& b) {
                return a.valid.start < b.valid.start;
              });
    EncodeChain(uid, chain, &out);
  }
  std::string stats_blob;
  db.backend().stats().SerializeTo(&stats_blob);
  PutFixed64(&out, stats_blob.size());
  out += stats_blob;
  PutFixed32(&out, MaskCrc(Crc32c(out.data(), out.size())));
  return out;
}

Result<CheckpointContents> LoadCheckpoint(const std::string& path,
                                          const schema::Schema& schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open checkpoint " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  if (data.size() < sizeof(kCheckpointMagic) + 4) {
    return Status::Corruption("checkpoint " + path + " is truncated");
  }
  if (std::memcmp(data.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  // CRC covers everything before the trailing 4 bytes; verify before
  // trusting any length field.
  {
    BinaryReader crc_reader(
        std::string_view(data.data() + data.size() - 4, 4));
    uint32_t masked = 0;
    crc_reader.ReadFixed32(&masked).IgnoreError();
    if (UnmaskCrc(masked) != Crc32c(data.data(), data.size() - 4)) {
      return Status::Corruption("checkpoint crc mismatch in " + path);
    }
  }

  BinaryReader reader(std::string_view(data.data() + sizeof(kCheckpointMagic),
                                       data.size() - sizeof(kCheckpointMagic) -
                                           4));
  CheckpointContents out;
  uint8_t version = 0;
  NEPAL_RETURN_NOT_OK(reader.ReadFixed8(&version));
  if (version != kCheckpointFormatVersion) {
    return Status::Corruption("unsupported checkpoint format version " +
                              std::to_string(version) + " in " + path);
  }
  NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&out.fingerprint));
  NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&out.wal_seq));
  NEPAL_RETURN_NOT_OK(reader.ReadFixedI64(&out.now));
  NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&out.next_uid));
  uint64_t nchains = 0;
  NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&nchains));
  out.chains.reserve(static_cast<size_t>(
      std::min<uint64_t>(nchains, reader.remaining() / 8)));
  Uid prev_uid = 0;
  for (uint64_t c = 0; c < nchains; ++c) {
    Uid uid = 0;
    NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&uid));
    if (uid <= prev_uid) {
      return Status::Corruption("checkpoint chains out of uid order in " +
                                path);
    }
    prev_uid = uid;
    std::string class_name;
    NEPAL_RETURN_NOT_OK(reader.ReadString(&class_name));
    const schema::ClassDef* cls = schema.FindClass(class_name);
    if (cls == nullptr) {
      return Status::Corruption("checkpoint " + path +
                                " references unknown class '" + class_name +
                                "'");
    }
    Uid source = 0, target = 0;
    NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&source));
    NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&target));
    uint32_t nversions = 0;
    NEPAL_RETURN_NOT_OK(reader.ReadFixed32(&nversions));
    if (nversions == 0) {
      return Status::Corruption("checkpoint chain for uid " +
                                std::to_string(uid) + " is empty in " + path);
    }
    std::vector<storage::ElementVersion> chain;
    chain.reserve(std::min<uint32_t>(
        nversions, static_cast<uint32_t>(reader.remaining() / 16 + 1)));
    for (uint32_t i = 0; i < nversions; ++i) {
      storage::ElementVersion v;
      v.uid = uid;
      v.cls = cls;
      v.source = source;
      v.target = target;
      NEPAL_RETURN_NOT_OK(reader.ReadFixedI64(&v.valid.start));
      NEPAL_RETURN_NOT_OK(reader.ReadFixedI64(&v.valid.end));
      uint32_t nfields = 0;
      NEPAL_RETURN_NOT_OK(reader.ReadFixed32(&nfields));
      if (nfields != cls->fields().size()) {
        return Status::Corruption(
            "checkpoint row for uid " + std::to_string(uid) + " has " +
            std::to_string(nfields) + " fields, class " + class_name +
            " declares " + std::to_string(cls->fields().size()));
      }
      v.fields.reserve(nfields);
      for (uint32_t f = 0; f < nfields; ++f) {
        NEPAL_ASSIGN_OR_RETURN(Value val, Value::DecodeBinary(&reader));
        v.fields.push_back(std::move(val));
      }
      chain.push_back(std::move(v));
    }
    out.chains.emplace_back(uid, std::move(chain));
  }
  uint64_t stats_len = 0;
  NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&stats_len));
  if (stats_len != reader.remaining()) {
    return Status::Corruption("checkpoint stats length mismatch in " + path);
  }
  NEPAL_RETURN_NOT_OK(reader.ReadBytes(stats_len, &out.stats_blob));
  return out;
}

Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       const std::string& data) {
  const std::string tmp_path = dir + "/." + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  int fd = ::open(tmp_path.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp_path));
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w = ::write(fd, data.data() + done, data.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return Status::IoError(ErrnoMessage("write", tmp_path));
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Status::IoError(ErrnoMessage("fsync", tmp_path));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::IoError(ErrnoMessage("close", tmp_path));
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return Status::IoError(ErrnoMessage("rename", final_path));
  }
  // Persist the rename itself.
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace nepal::persist
