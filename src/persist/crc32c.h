// CRC32C (Castagnoli): the checksum guarding every WAL record frame and
// checkpoint file. Software slice-by-one implementation — ingest is bounded
// by fsync, not checksumming, at the scales this repo targets.

#ifndef NEPAL_PERSIST_CRC32C_H_
#define NEPAL_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nepal::persist {

/// CRC32C of `data`, continuing from `seed` (0 for a fresh checksum).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// Masked form stored on disk (RocksDB-style rotation + offset), so a CRC
/// of data that itself contains CRCs does not degenerate.
uint32_t MaskCrc(uint32_t crc);
uint32_t UnmaskCrc(uint32_t masked);

}  // namespace nepal::persist

#endif  // NEPAL_PERSIST_CRC32C_H_
