// DurableStore: WAL + checkpoints + crash recovery around a GraphDb.
//
// Open() points the durability layer at a directory:
//
//   <dir>/wal-00000007.log        segment files, framed logical records
//   <dir>/checkpoint-00000007.ckp full state images (see checkpoint.h)
//
// and performs recovery: the newest valid checkpoint is restored (falling
// back to an older one if the newest is corrupt or missing — two are
// retained), then every WAL segment at or after the checkpoint's sequence
// is replayed through the public GraphDb API. A torn final record — the
// signature of a crash mid-append — is tolerated; CRC damage anywhere else
// fails recovery with a Corruption error. A fresh segment is then opened
// (never appending to a possibly-torn file) and the store attaches itself
// as the database's WriteLog, so every subsequent commit is logged in
// order under the writer lock.
//
// Because records replay through GraphDb, recovery reproduces uid
// assignment, the transaction clock, cascade deletes and unique-index
// state identically on either execution backend: a recovered database
// answers timeslice and time-range queries byte-identically to the
// original.
//
// Checkpoint() rotates the log (close segment S, start S+1) and writes a
// checkpoint image carrying sequence S+1 under one consistent cut, then
// prunes: the newest `retain_checkpoints` images are kept and segments
// older than the oldest retained image are deleted.

#ifndef NEPAL_PERSIST_DURABLE_STORE_H_
#define NEPAL_PERSIST_DURABLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/graphdb.h"
#include "storage/write_log.h"
#include "persist/wal.h"

namespace nepal::persist {

/// Builds the execution backend a recovered database runs on; lets the
/// same directory be opened under graphstore or relational execution.
using BackendFactory =
    std::function<std::unique_ptr<storage::StorageBackend>(
        schema::SchemaPtr)>;

struct DurableOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  int fsync_interval_ms = 50;
  /// Checkpoint images kept on disk. Two means the newest can be lost or
  /// damaged and recovery still succeeds from the previous one.
  int retain_checkpoints = 2;
};

/// What recovery found and did; surfaced to callers and `\metrics`.
struct RecoveryInfo {
  bool restored_checkpoint = false;
  uint64_t checkpoint_seq = 0;    // sequence of the image restored
  int checkpoints_skipped = 0;    // newer images that failed to load
  size_t segments_replayed = 0;
  size_t records_replayed = 0;
  bool torn_tail = false;  // the last segment ended mid-record
};

class DurableStore final : public storage::WriteLog {
 public:
  /// Opens (creating if needed) the data directory, recovers, and returns
  /// a store whose db() is ready for reads and durable writes.
  static Result<std::unique_ptr<DurableStore>> Open(std::string dir,
                                                    schema::SchemaPtr schema,
                                                    const BackendFactory& factory,
                                                    DurableOptions options = {});

  ~DurableStore() override;

  storage::GraphDb& db() { return *db_; }
  const storage::GraphDb& db() const { return *db_; }
  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  const std::string& dir() const { return dir_; }

  /// Rotates the WAL and writes a checkpoint image of the current state.
  Status Checkpoint();

  /// Forces the active segment to stable storage (regardless of policy).
  Status Sync();

  /// One-shot export for `\save`: writes a single checkpoint image of `db`
  /// into `dir` (which must not already hold Nepal data files). The
  /// directory can later be opened with DurableStore::Open on any backend.
  static Status SaveSnapshot(const std::string& dir,
                             const storage::GraphDb& db);

  // WriteLog implementation (called by GraphDb under its writer lock).
  Status AppendSetTime(Timestamp t) override;
  Status AppendAddNode(Uid uid, const schema::ClassDef* cls,
                       const std::vector<Value>& row, Timestamp t) override;
  Status AppendAddEdge(Uid uid, const schema::ClassDef* cls,
                       const std::vector<Value>& row, Uid source, Uid target,
                       Timestamp t) override;
  Status AppendUpdate(Uid uid,
                      const std::vector<std::pair<int, Value>>& changes,
                      Timestamp t) override;
  Status AppendRemove(Uid uid, Timestamp t) override;

 private:
  DurableStore(std::string dir, uint64_t fingerprint, DurableOptions options);

  std::string SegmentPath(uint64_t seq) const;
  Status AppendRecord(const WalRecord& rec);
  /// Deletes checkpoints beyond the retention count and segments older
  /// than the oldest retained checkpoint.
  void Prune();

  std::string dir_;
  uint64_t fingerprint_;
  DurableOptions options_;
  std::unique_ptr<storage::GraphDb> db_;
  std::unique_ptr<WalWriter> writer_;
  RecoveryInfo recovery_info_;
  /// Serializes Checkpoint()/Sync() against each other; appends are already
  /// serialized by the database writer lock, which those admin operations
  /// exclude by holding db_->mutex() shared.
  std::mutex admin_mu_;
  /// Checkpoint sequences on disk, ascending.
  std::vector<uint64_t> checkpoints_;
};

/// Replays one logical record against `db` through the public API,
/// verifying that uid assignment matches the log. Exposed for the replay
/// benchmark and tests; DurableStore::Open uses it for recovery.
Status ApplyWalRecord(storage::GraphDb& db, const WalRecord& rec);

}  // namespace nepal::persist

#endif  // NEPAL_PERSIST_DURABLE_STORE_H_
