// DurableStore: WAL + checkpoints + crash recovery around a GraphDb.
//
// Open() points the durability layer at a directory:
//
//   <dir>/wal-00000007.log        segment files, framed logical records
//   <dir>/checkpoint-00000007.ckp full state images (see checkpoint.h)
//
// and performs recovery: the newest valid checkpoint is restored (falling
// back to an older one if the newest is corrupt or missing — two are
// retained), then every WAL segment at or after the checkpoint's sequence
// is replayed through the public GraphDb API. A torn final record — the
// signature of a crash mid-append — is tolerated; CRC damage anywhere else
// fails recovery with a Corruption error. A fresh segment is then opened
// (never appending to a possibly-torn file) and the store attaches itself
// as the database's WriteLog, so every subsequent commit is logged in
// order under the writer lock.
//
// Because records replay through GraphDb, recovery reproduces uid
// assignment, the transaction clock, cascade deletes and unique-index
// state identically on either execution backend: a recovered database
// answers timeslice and time-range queries byte-identically to the
// original.
//
// Checkpoint() rotates the log (close segment S, start S+1) and writes a
// checkpoint image carrying sequence S+1 under one consistent cut, then
// prunes: the newest `retain_checkpoints` images are kept and segments
// older than the oldest retained image are deleted — unless a live WAL
// subscriber still needs them (see below).
//
// Subscribe() is the primary side of log shipping (src/replication). A
// subscription is a consistent replica bootstrap recipe: the newest
// checkpoint image plus every committed WAL frame after it, in commit
// order, with no gap and no duplicate. It hands out (1) the checkpoint
// image bytes, (2) the already-closed portion of the log read back from
// disk, and (3) live frames pushed by Append as commits happen. Retention
// pins segments a subscriber has not consumed yet, so Checkpoint()'s
// rotate-then-prune can never delete a segment out from under a follower
// that is still catching up.

#ifndef NEPAL_PERSIST_DURABLE_STORE_H_
#define NEPAL_PERSIST_DURABLE_STORE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/graphdb.h"
#include "storage/write_log.h"
#include "persist/wal.h"

namespace nepal::persist {

/// Builds the execution backend a recovered database runs on; lets the
/// same directory be opened under graphstore or relational execution.
using BackendFactory =
    std::function<std::unique_ptr<storage::StorageBackend>(
        schema::SchemaPtr)>;

/// Canonical data-file names: "wal-%08u.log" / "checkpoint-%08u.ckp".
/// Exposed so the replication follower can seed its own directory with the
/// shipped checkpoint image under the name recovery expects.
std::string WalSegmentFileName(uint64_t seq);
std::string CheckpointFileName(uint64_t seq);

struct DurableOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  int fsync_interval_ms = 50;
  /// Checkpoint images kept on disk. Two means the newest can be lost or
  /// damaged and recovery still succeeds from the previous one.
  int retain_checkpoints = 2;
};

/// What recovery found and did; surfaced to callers and `\metrics`.
struct RecoveryInfo {
  bool restored_checkpoint = false;
  uint64_t checkpoint_seq = 0;    // sequence of the image restored
  int checkpoints_skipped = 0;    // newer images that failed to load
  size_t segments_replayed = 0;
  size_t records_replayed = 0;
  bool torn_tail = false;  // the last segment ended mid-record
};

/// One shipped WAL frame: the encoded record payload plus where it sits in
/// the log and when the primary shipped it (for follower lag accounting;
/// zero for frames read back from disk during catch-up, whose append time
/// is unknown).
///
/// `trace_id` / `root_span` carry the primary's commit trace context when
/// the committing write was traced (obs/trace.h); zero means untraced.
/// On the wire this rides in an *optional* NPLSHP01 annotation (frame tag
/// 0x03) — untraced frames keep the original tag-0x02 encoding byte for
/// byte, and old followers never see the new tag. Catch-up frames read
/// back from disk carry no context (the WAL file does not store it).
struct WalShipFrame {
  uint64_t segment_seq = 0;
  int64_t shipped_at_us = 0;
  uint64_t trace_id = 0;
  uint32_t root_span = 0;
  std::string payload;
  /// Commit epoch of the write that produced this frame, stamped at publish
  /// time (the epoch store-release happens before the WAL append under the
  /// writer lock, so the value is exact). In-process consumers — the view
  /// catalog — use it to pin snapshot repairs; it does NOT travel on the
  /// NPLSHP01 wire, and catch-up frames read back from disk carry 0
  /// ("unknown": the WAL file does not store epochs).
  uint64_t commit_epoch = 0;
  /// records_appended() as of this frame — this frame is the Nth record the
  /// primary appended this run. The replication listener uses it to convert
  /// a follower's "I applied my Mth session frame" ack into commit-token
  /// units for semi-sync quorum. 0 for catch-up frames read back from disk
  /// (the WAL file does not store it); coverage before the live stream is
  /// reached is simply unreported, which only errs conservative.
  uint64_t primary_records = 0;
};

struct SubscribeOptions {
  /// Live frames buffered for a slow consumer before the subscription is
  /// declared lagged and disconnected (it must re-bootstrap). Bounds
  /// primary memory instead of letting a dead follower grow a queue
  /// forever.
  size_t max_buffered_bytes = 64u << 20;
  /// Resume-from-seq (handshake v2): when nonzero the subscription carries
  /// NO checkpoint image — the follower already holds the state. Streaming
  /// starts at WAL segment `resume_seq`, skipping its first
  /// `resume_skip_records` records (the portion the follower applied before
  /// the disconnect). Subscribe() fails with kNotFound when that segment
  /// has been pruned; the caller falls back to a full bootstrap.
  uint64_t resume_seq = 0;
  uint64_t resume_skip_records = 0;
};

/// One subscriber's view of the log, created by DurableStore::Subscribe.
///
/// Consumption protocol: restore `checkpoint_image()`, then call Next()
/// until it fails. Next() first drains the closed portion of the log from
/// disk (segments start_seq()..attach point, `shipped_at_us == 0`), then
/// delivers live frames in commit order. Returns true with a frame, false
/// on timeout (no data yet — keep polling), or:
///   - kUnavailable("lagged")  the consumer fell behind max_buffered_bytes
///     of live traffic; the stream has a hole and cannot resume,
///   - kUnavailable("closed")  the primary store was destroyed or the
///     subscription was cancelled; remaining buffered frames are still
///     drained first.
///
/// Thread model: one consumer thread calls Next(); Cancel() and the
/// primary's publish side may run concurrently with it.
class WalSubscription {
 public:
  const std::string& checkpoint_image() const { return checkpoint_image_; }
  /// Sequence the checkpoint image carries: the first segment to consume.
  uint64_t start_seq() const { return start_seq_; }

  Result<bool> Next(WalShipFrame* frame, std::chrono::milliseconds timeout);

  /// Detaches from the store; a blocked Next() wakes and the store stops
  /// buffering for (and retention-pinning on behalf of) this subscriber.
  void Cancel();

  bool lagged() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lagged_;
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Lowest segment sequence this subscriber may still read from disk.
  /// Prune() keeps every segment >= the minimum over live subscribers.
  uint64_t min_needed_seq() const {
    return floor_.load(std::memory_order_acquire);
  }

 private:
  friend class DurableStore;

  WalSubscription(std::string dir, uint64_t fingerprint,
                  std::string checkpoint_image, uint64_t start_seq,
                  uint64_t attach_seq, uint64_t attach_offset,
                  size_t max_buffered_bytes, uint64_t skip_records);

  /// Reads the next not-yet-consumed closed segment into pending_. The
  /// attach segment is read only up to the frozen attach offset, so the
  /// read never races the writer appending past it.
  Status FillFromDiskLocked();

  // Publish side (store calls these under its subs mutex).
  void PushLive(WalShipFrame frame);
  void MarkClosed();

  const std::string dir_;
  const uint64_t fingerprint_;
  const std::string checkpoint_image_;
  const uint64_t start_seq_;
  const uint64_t attach_seq_;     // active segment at subscribe time
  const uint64_t attach_offset_;  // its size at subscribe time
  const size_t max_buffered_bytes_;
  /// Records of the first disk segment the consumer already holds (resume
  /// subscriptions); dropped during the first FillFromDiskLocked.
  uint64_t skip_records_;

  /// Lowest segment still needed from disk; advances as catch-up proceeds,
  /// settling at attach_seq_+1 once the disk phase is done.
  std::atomic<uint64_t> floor_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_disk_seq_;          // next closed segment to read
  std::deque<WalShipFrame> pending_;  // disk catch-up frames
  std::deque<WalShipFrame> live_;     // frames pushed by Append
  size_t live_bytes_ = 0;
  bool lagged_ = false;
  bool closed_ = false;  // cancelled, or the store went away
};

class DurableStore final : public storage::WriteLog {
 public:
  /// Opens (creating if needed) the data directory, recovers, and returns
  /// a store whose db() is ready for reads and durable writes.
  static Result<std::unique_ptr<DurableStore>> Open(std::string dir,
                                                    schema::SchemaPtr schema,
                                                    const BackendFactory& factory,
                                                    DurableOptions options = {});

  ~DurableStore() override;

  storage::GraphDb& db() { return *db_; }
  const storage::GraphDb& db() const { return *db_; }
  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  const std::string& dir() const { return dir_; }

  /// Rotates the WAL and writes a checkpoint image of the current state.
  Status Checkpoint();

  /// Forces the active segment to stable storage (regardless of policy).
  Status Sync();

  /// Opens a replication subscription (see WalSubscription). Writes a
  /// fresh checkpoint first if the directory holds none, so there is
  /// always a bootstrap image to hand out. With `options.resume_seq` set,
  /// no image is shipped and the stream resumes mid-log instead; kNotFound
  /// means the requested segment was pruned (caller re-bootstraps).
  Result<std::shared_ptr<WalSubscription>> Subscribe(
      SubscribeOptions options = {});

  // ---- Semi-synchronous commit (acks from attached followers) ----

  struct SemiSyncOptions {
    /// Followers that must have acknowledged a commit before the writer
    /// returns. 0 disables the wait entirely (fully asynchronous).
    int quorum = 0;
    /// Per-commit wait bound. On expiry the store *degrades to async* —
    /// this commit and every following one return immediately — instead of
    /// stalling ingest behind a hung follower. Semi-sync re-arms by itself
    /// once the quorum has caught back up to the current commit token.
    int timeout_ms = 1000;
  };

  /// Configures (or, with quorum=0, disables) semi-sync commit. Safe to
  /// call while writers are active.
  void SetSemiSync(SemiSyncOptions options);

  /// True while a quorum timeout has switched commits to async and the
  /// quorum has not yet caught back up.
  bool semisync_degraded() const;

  /// One ack source per connected follower session. ReportAck publishes
  /// the follower's applied-records high-water mark; commit waiters wake
  /// when a quorum of sources reaches their token.
  uint64_t RegisterAckSource(const std::string& name);
  void UnregisterAckSource(uint64_t id);
  void ReportAck(uint64_t id, uint64_t acked_records);

  /// Records appended to the WAL over this store's lifetime (not counting
  /// recovery replay). The kill/promote test and the shell's \replication
  /// command compare this against a follower's applied count.
  uint64_t records_appended() const {
    return records_appended_.load(std::memory_order_acquire);
  }

  /// One-shot export for `\save`: writes a single checkpoint image of `db`
  /// into `dir` (which must not already hold Nepal data files). The
  /// directory can later be opened with DurableStore::Open on any backend.
  static Status SaveSnapshot(const std::string& dir,
                             const storage::GraphDb& db);

  // WriteLog implementation (called by GraphDb under its writer lock, so
  // frames are published to subscribers in commit order).
  Status Append(const storage::WalRecord& rec) override;

  /// One ApplyBatch commit group: every record is encoded up front, the
  /// segment receives them as one contiguous frame group paying at most one
  /// fsync (WalWriter::AppendGroup), and subscribers see the whole batch
  /// under a single publish — a follower can never observe a gap inside
  /// the group.
  Status AppendBatch(const std::vector<storage::WalRecord>& recs) override;

  /// Semi-sync hooks (see storage::WriteLog): the token is the appended-
  /// records high-water mark; the wait runs after GraphDb releases its
  /// writer lock, so a slow quorum delays only the committing caller.
  uint64_t commit_token() const override { return records_appended(); }
  void WaitCommitted(uint64_t token) override;

 private:
  DurableStore(std::string dir, uint64_t fingerprint, DurableOptions options);

  std::string SegmentPath(uint64_t seq) const;
  /// Checkpoint() body; caller holds admin_mu_.
  Status CheckpointLocked();
  /// Deletes checkpoints beyond the retention count and segments older
  /// than the oldest retained checkpoint, except segments a live
  /// subscriber still needs. Caller holds admin_mu_.
  void PruneLocked();
  /// Pushes one committed frame to every live subscriber and drops
  /// cancelled/lagged ones.
  /// `record` is the records_appended() value as of this frame (its stamp
  /// for ack/commit-token alignment).
  void PublishFrame(uint64_t segment_seq, const std::string& payload,
                    uint64_t record);
  /// Batch variant: all frames are pushed under ONE hold of the subscriber
  /// mutex with one ship timestamp, so no subscriber can be attached or
  /// dropped between two frames of the same commit group. The i-th payload
  /// is stamped `first_record + i`.
  void PublishFrames(uint64_t segment_seq,
                     const std::vector<std::string>& payloads,
                     uint64_t first_record);
  void UpdateSubscriberGauge();

  std::string dir_;
  uint64_t fingerprint_;
  DurableOptions options_;
  std::unique_ptr<storage::GraphDb> db_;
  std::unique_ptr<WalWriter> writer_;
  RecoveryInfo recovery_info_;
  std::atomic<uint64_t> records_appended_{0};
  /// Serializes Checkpoint()/Sync()/Subscribe() against each other;
  /// appends are already serialized by the database writer lock, which
  /// those admin operations exclude by holding db_->mutex() shared.
  /// Ordering: admin_mu_ before db_->mutex() before subs_mu_.
  std::mutex admin_mu_;
  /// Checkpoint sequences on disk, ascending.
  std::vector<uint64_t> checkpoints_;
  /// Guards subs_; taken after the db mutex (publish happens inside the
  /// writer's critical section) and after admin_mu_ (prune, subscribe).
  std::mutex subs_mu_;
  std::vector<std::shared_ptr<WalSubscription>> subs_;
  /// Semi-sync state. ack_mu_ is leaf-level: never taken while holding any
  /// other store or database mutex (WaitCommitted runs after the writer
  /// lock is released; ReportAck comes from listener session threads).
  mutable std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  SemiSyncOptions semisync_;
  bool semisync_degraded_ = false;
  uint64_t next_ack_id_ = 1;
  struct AckSource {
    std::string name;
    uint64_t acked = 0;
  };
  std::map<uint64_t, AckSource> ack_sources_;
};

/// Replays one logical record against `db` through the public API,
/// verifying that uid assignment matches the log. Exposed for the replay
/// benchmark, the replication follower and tests; DurableStore::Open uses
/// it for recovery.
Status ApplyWalRecord(storage::GraphDb& db, const WalRecord& rec);

/// Batch variant: maps the records to storage::Mutation (pinning uids the
/// way ApplyWalRecord's SyncNextUid does) and applies them through
/// GraphDb::ApplyBatch — one writer-lock acquisition, one commit epoch and
/// at most one fsync for the whole group. The replication follower uses
/// this to re-batch frames that arrive together.
Status ApplyWalRecordBatch(storage::GraphDb& db,
                           const std::vector<WalRecord>& recs);

}  // namespace nepal::persist

#endif  // NEPAL_PERSIST_DURABLE_STORE_H_
