// WAL segment files: physical framing, fsync policy, and the reader.
//
// A segment file is a 24-byte header (magic "NPLWAL01", segment sequence
// number, schema fingerprint) followed by framed records:
//
//   [u32 payload length][u32 masked CRC32C of payload][payload bytes]
//
// Recovery semantics mirror the classic log contract:
//   - a frame that extends past EOF is a *torn tail* — the expected artifact
//     of a crash mid-append — and is tolerated: replay stops cleanly before
//     it and the tail is abandoned (a fresh segment is opened for new
//     writes, so torn bytes are never appended after);
//   - a complete frame whose CRC does not match is *corruption* and fails
//     recovery with a clear error — silent data damage must never replay.
//
// Group commit: appends always go to the OS immediately; the fsync policy
// decides when the file is forced to stable storage. kAlways syncs every
// append (each commit durable before the writer returns), kInterval batches
// appends into one fsync per interval window (bounded-loss group commit:
// a background flusher guarantees dirty bytes reach disk within the window
// of the append that produced them, even if no further append ever
// arrives), kNone leaves flushing entirely to the OS.

#ifndef NEPAL_PERSIST_WAL_H_
#define NEPAL_PERSIST_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "persist/wal_format.h"

namespace nepal::obs {
class Counter;
class Histogram;
}  // namespace nepal::obs

namespace nepal::persist {

inline constexpr char kWalMagic[8] = {'N', 'P', 'L', 'W', 'A', 'L', '0', '1'};
inline constexpr size_t kWalHeaderSize = 8 + 8 + 8;  // magic + seq + fingerprint
inline constexpr size_t kWalFrameHeaderSize = 4 + 4;  // length + masked crc
/// Upper bound on a single record payload; larger length fields are treated
/// as corruption rather than torn tails (they cannot be real).
inline constexpr uint32_t kMaxWalRecordBytes = 1u << 30;

enum class FsyncPolicy {
  kAlways,    // fsync after every append
  kInterval,  // fsync at most once per interval window (group commit)
  kNone,      // never fsync; the OS decides
};

const char* FsyncPolicyToString(FsyncPolicy policy);
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text);

struct WalWriterOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  /// Group-commit window for kInterval: an append fsyncs inline only if
  /// this many milliseconds have passed since the last fsync; otherwise the
  /// background flusher syncs within this window of the first dirty byte,
  /// so a write on a then-quiet writer is never left unsynced (bounded
  /// loss).
  int fsync_interval_ms = 50;
};

/// Appends framed records to one segment file. Callers serialize appends
/// (GraphDb's writer lock does); the writer itself is not thread-safe for
/// appends, but under kInterval it runs an internal deadline-flush thread
/// that synchronizes with appends on the sync state only.
class WalWriter {
 public:
  /// Creates the segment file (must not exist), writes and syncs the
  /// header.
  static Result<std::unique_ptr<WalWriter>> Create(std::string path,
                                                   uint64_t segment_seq,
                                                   uint64_t fingerprint,
                                                   WalWriterOptions options);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frames and writes one record payload, then applies the fsync policy.
  Status Append(std::string_view payload);

  /// Frames and writes a whole commit group as ONE contiguous write, then
  /// applies the fsync policy once — at most one fsync for the group. Each
  /// payload gets the standard frame (readers cannot tell a group from N
  /// single appends); metrics count one append per record.
  Status AppendGroup(const std::vector<std::string>& payloads);

  /// Unconditional fsync (checkpoint rotation, clean shutdown).
  Status Sync();

  /// Syncs and closes the file; further appends fail.
  Status Close();

  const std::string& path() const { return path_; }
  uint64_t segment_seq() const { return segment_seq_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WalWriter(std::string path, int fd, uint64_t segment_seq,
            WalWriterOptions options);
  Status WriteFully(const char* data, size_t n);
  Status MaybeSync();
  /// Sync() body; caller holds flush_mu_.
  Status SyncLocked();
  /// kInterval deadline flusher: fsyncs dirty bytes once they have been
  /// waiting a full window, closing the idle-tail hole where an append
  /// lands mid-window and no later append arrives to trigger the sync.
  void FlusherLoop();
  void StopFlusher();

  std::string path_;
  int fd_;
  uint64_t segment_seq_;
  WalWriterOptions options_;
  uint64_t bytes_written_ = 0;

  /// Guards the sync state below (shared with the deadline flusher) and
  /// serializes fsync against it. The append path itself stays
  /// single-threaded per the class contract.
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::thread flusher_;
  bool stop_flusher_ = false;
  bool dirty_ = false;  // bytes written since the last fsync
  std::chrono::steady_clock::time_point last_sync_;
  /// When the oldest currently-dirty byte was written (valid while dirty_);
  /// the flusher's deadline is dirty_since_ + fsync_interval_ms.
  std::chrono::steady_clock::time_point dirty_since_;
  /// Trace context of the last traced append whose bytes are still dirty
  /// (guarded by flush_mu_). When the deadline flusher — not an inline
  /// sync — pushes those bytes to disk, it attaches the fsync span to this
  /// context, so an interval-policy commit's trace eventually shows where
  /// its durability point actually landed.
  obs::TraceContext pending_flush_ctx_;

  // Cached metric cells (registry pointers are stable).
  obs::Counter* appends_;
  obs::Counter* append_bytes_;
  obs::Counter* fsyncs_;
  obs::Counter* deadline_flushes_;
  obs::Histogram* append_ns_;
  obs::Histogram* fsync_ns_;
};

/// Outcome of scanning one segment.
struct WalReadResult {
  size_t records = 0;     // complete, CRC-valid records delivered
  bool torn_tail = false; // the file ended inside a frame
  uint64_t valid_bytes = 0;  // offset of the first byte past the last
                             // complete record (header included)
};

/// Reads a segment, checking the magic, sequence number and fingerprint,
/// and invokes `apply` for each complete CRC-valid record in order. Stops
/// tolerantly at a torn tail; fails with Corruption on a CRC mismatch, an
/// undecodable record, or a header that does not match expectations. A file
/// shorter than its header is reported as a torn tail with zero records
/// (the crash happened during segment creation).
Result<WalReadResult> ReadWalSegment(
    const std::string& path, uint64_t expected_seq,
    uint64_t expected_fingerprint,
    const std::function<Status(const WalRecord&)>& apply);

/// Raw-frame variant of ReadWalSegment: same header/CRC checks, but delivers
/// each payload undecoded (replication ships bytes, not decoded records) and
/// reads at most `max_bytes` of the file (0 = whole file). The byte bound
/// lets a subscriber read the *active* segment up to a frozen offset without
/// racing the writer: frames past the bound are simply not looked at, and a
/// frame cut by the bound is reported as a torn tail exactly like EOF.
Result<WalReadResult> ReadWalFrames(
    const std::string& path, uint64_t expected_seq,
    uint64_t expected_fingerprint, uint64_t max_bytes,
    const std::function<Status(std::string_view payload)>& apply);

}  // namespace nepal::persist

#endif  // NEPAL_PERSIST_WAL_H_
