// Checkpoints: a full serialized image of the temporal store.
//
// A checkpoint captures everything a cold start needs — the clock, the uid
// allocator, every element's complete version chain (current and history),
// and the backend's GraphStats, serialized exactly. Restoring one therefore
// rebuilds the optimizer's statistics without replaying a single element;
// only the WAL tail written after the checkpoint is replayed.
//
// File layout (all little-endian, via common/binary.h):
//
//   magic "NPLCKP01"
//   u8  format version (1)
//   u64 schema fingerprint
//   u64 wal_seq        — first WAL segment whose records post-date this image
//   i64 now            — transaction clock
//   u64 next_uid       — uid allocator
//   u64 chain count
//   per chain (ascending uid):
//     u64 uid, string class name, u64 source, u64 target
//     u32 version count
//     per version (ascending start): i64 start, i64 end,
//       u32 field count, encoded Values
//   u64 stats length, stats bytes (stats::GraphStats::SerializeTo)
//   u32 masked CRC32C of every preceding byte
//
// Files are written to a temp name and atomically renamed, so a crash mid-
// write never leaves a half checkpoint under the real name; the CRC catches
// any later damage.

#ifndef NEPAL_PERSIST_CHECKPOINT_H_
#define NEPAL_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/element.h"
#include "storage/graphdb.h"

namespace nepal::persist {

inline constexpr char kCheckpointMagic[8] = {'N', 'P', 'L', 'C',
                                             'K', 'P', '0', '1'};
inline constexpr uint8_t kCheckpointFormatVersion = 1;

/// Decoded checkpoint, ready for restore.
struct CheckpointContents {
  uint64_t fingerprint = 0;
  uint64_t wal_seq = 0;
  Timestamp now = 0;
  Uid next_uid = 1;
  /// (uid, version chain ordered by start time), ascending uid.
  std::vector<std::pair<Uid, std::vector<storage::ElementVersion>>> chains;
  /// Serialized stats::GraphStats (deserialized by the restorer, which
  /// knows the schema).
  std::string stats_blob;
};

/// Serializes the database's full state. The caller must hold db.mutex()
/// shared across this call (the checkpoint writer spans one lock scope over
/// the clock/uid reads and the backend scans, so the image is a consistent
/// cut).
std::string EncodeCheckpointLocked(const storage::GraphDb& db,
                                   uint64_t fingerprint, uint64_t wal_seq);

/// Parses and CRC-verifies a checkpoint file, resolving class names against
/// `schema`. Any mismatch — bad magic, bad CRC, unknown class, fingerprint
/// drift — is Corruption.
Result<CheckpointContents> LoadCheckpoint(const std::string& path,
                                          const schema::Schema& schema);

/// Writes `data` to `dir/name` via a temp file + fsync + atomic rename
/// (+ directory fsync), so the file is either absent or complete.
Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       const std::string& data);

}  // namespace nepal::persist

#endif  // NEPAL_PERSIST_CHECKPOINT_H_
