#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/binary.h"
#include "obs/metrics.h"
#include "persist/crc32c.h"

namespace nepal::persist {

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

uint32_t DecodeFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

const char* FsyncPolicyToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "?";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "none") return FsyncPolicy::kNone;
  return Status::InvalidArgument("unknown fsync policy '" + text +
                                 "' (expected always|interval|none)");
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(std::string path,
                                                     uint64_t segment_seq,
                                                     uint64_t fingerprint,
                                                     WalWriterOptions options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open wal segment", path));
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(std::move(path), fd, segment_seq, options));
  std::string header(kWalMagic, sizeof(kWalMagic));
  PutFixed64(&header, segment_seq);
  PutFixed64(&header, fingerprint);
  Status s = writer->WriteFully(header.data(), header.size());
  // The header is synced unconditionally: a segment whose existence is not
  // durable could vanish in a crash and open a gap in the sequence.
  if (s.ok()) s = writer->Sync();
  if (!s.ok()) return s;
  return writer;
}

WalWriter::WalWriter(std::string path, int fd, uint64_t segment_seq,
                     WalWriterOptions options)
    : path_(std::move(path)),
      fd_(fd),
      segment_seq_(segment_seq),
      options_(options),
      last_sync_(std::chrono::steady_clock::now()) {
  auto& reg = obs::MetricsRegistry::Global();
  appends_ = reg.GetCounter("nepal.wal.appends");
  append_bytes_ = reg.GetCounter("nepal.wal.append_bytes");
  fsyncs_ = reg.GetCounter("nepal.wal.fsyncs");
  deadline_flushes_ = reg.GetCounter("nepal.wal.deadline_flushes");
  append_ns_ = reg.GetHistogram("nepal.wal.append_ns");
  fsync_ns_ = reg.GetHistogram("nepal.wal.fsync_ns");
  if (options_.fsync_policy == FsyncPolicy::kInterval &&
      options_.fsync_interval_ms > 0) {
    flusher_ = std::thread(&WalWriter::FlusherLoop, this);
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    Close().IgnoreError();
  } else {
    StopFlusher();
  }
}

void WalWriter::FlusherLoop() {
  const auto window = std::chrono::milliseconds(options_.fsync_interval_ms);
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (!stop_flusher_) {
    if (!dirty_) {
      flush_cv_.wait(lock, [&] { return stop_flusher_ || dirty_; });
      continue;
    }
    // Dirty bytes exist: sleep until their deadline, then flush whatever is
    // still dirty. An explicit Sync meanwhile clears dirty_ and we loop.
    const auto deadline = dirty_since_ + window;
    if (flush_cv_.wait_until(lock, deadline, [&] { return stop_flusher_; })) {
      break;
    }
    if (dirty_ && std::chrono::steady_clock::now() >= deadline) {
      // A deadline flush is the idle-tail sync: dirty bytes aged a full
      // window with no append-driven fsync picking them up. Count it
      // separately and, if the append that produced them was traced,
      // attribute the fsync to that (already finished) trace.
      obs::TraceContext ctx = std::move(pending_flush_ctx_);
      pending_flush_ctx_ = obs::TraceContext{};
      const uint64_t t0 = obs::TraceNowNs();
      SyncLocked().IgnoreError();
      deadline_flushes_->Add(1);
      if (ctx.trace) {
        ctx.trace->AddSpan(ctx.span_id, "wal.fsync.deadline",
                           obs::TraceNowNs() - t0);
      }
    }
  }
}

void WalWriter::StopFlusher() {
  if (!flusher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    stop_flusher_ = true;
  }
  flush_cv_.notify_all();
  flusher_.join();
}

Status WalWriter::WriteFully(const char* data, size_t n) {
  if (fd_ < 0) return Status::IoError("wal segment already closed: " + path_);
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd_, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write wal segment", path_));
    }
    done += static_cast<size_t>(w);
  }
  bytes_written_ += n;
  bool became_dirty = false;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    if (!dirty_) {
      dirty_since_ = std::chrono::steady_clock::now();
      became_dirty = true;
    }
    dirty_ = true;
    if (flusher_.joinable()) {
      const obs::TraceContext& current = obs::Tracer::CurrentContext();
      if (current.trace) pending_flush_ctx_ = current;
    }
  }
  // Wake the flusher only on the clean->dirty transition; it arms its
  // deadline off dirty_since_.
  if (became_dirty && flusher_.joinable()) flush_cv_.notify_one();
  return Status::OK();
}

Status WalWriter::AppendGroup(const std::vector<std::string>& payloads) {
  if (payloads.empty()) return Status::OK();
  obs::ScopedSpan span("wal.write");
  const auto t0 = std::chrono::steady_clock::now();
  size_t total = 0;
  for (const std::string& p : payloads) {
    total += kWalFrameHeaderSize + p.size();
  }
  std::string buf;
  buf.reserve(total);
  for (const std::string& p : payloads) {
    PutFixed32(&buf, static_cast<uint32_t>(p.size()));
    PutFixed32(&buf, MaskCrc(Crc32c(p.data(), p.size())));
    buf.append(p);
  }
  // One contiguous write, one fsync-policy application: a crash tears the
  // group at a frame boundary at worst, exactly like N singles, but the
  // happy path pays one syscall and at most one fsync.
  NEPAL_RETURN_NOT_OK(WriteFully(buf.data(), buf.size()));
  NEPAL_RETURN_NOT_OK(MaybeSync());
  appends_->Add(payloads.size());
  append_bytes_->Add(buf.size());
  append_ns_->Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return Status::OK();
}

Status WalWriter::Append(std::string_view payload) {
  obs::ScopedSpan span("wal.write");
  const auto t0 = std::chrono::steady_clock::now();
  std::string frame;
  frame.reserve(kWalFrameHeaderSize + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, MaskCrc(Crc32c(payload.data(), payload.size())));
  frame.append(payload.data(), payload.size());
  NEPAL_RETURN_NOT_OK(WriteFully(frame.data(), frame.size()));
  NEPAL_RETURN_NOT_OK(MaybeSync());
  appends_->Add(1);
  append_bytes_->Add(frame.size());
  append_ns_->Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return Status::OK();
}

Status WalWriter::MaybeSync() {
  switch (options_.fsync_policy) {
    case FsyncPolicy::kAlways:
      return Sync();
    case FsyncPolicy::kInterval: {
      std::lock_guard<std::mutex> lock(flush_mu_);
      const auto now = std::chrono::steady_clock::now();
      if (now - last_sync_ >=
          std::chrono::milliseconds(options_.fsync_interval_ms)) {
        return SyncLocked();
      }
      // Still inside the window: the deadline flusher guarantees these
      // bytes reach disk within fsync_interval_ms even if no further
      // append arrives (the idle-tail bounded-loss repair).
      return Status::OK();
    }
    case FsyncPolicy::kNone:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(flush_mu_);
  return SyncLocked();
}

Status WalWriter::SyncLocked() {
  if (fd_ < 0) return Status::IoError("wal segment already closed: " + path_);
  if (!dirty_) {
    last_sync_ = std::chrono::steady_clock::now();
    return Status::OK();
  }
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan span("wal.fsync");
    if (::fsync(fd_) != 0) {
      return Status::IoError(ErrnoMessage("fsync wal segment", path_));
    }
  }
  dirty_ = false;
  // An inline sync covered the dirty bytes; the deadline flusher has
  // nothing left to attribute.
  pending_flush_ctx_ = obs::TraceContext{};
  last_sync_ = std::chrono::steady_clock::now();
  fsyncs_->Add(1);
  fsync_ns_->Observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(last_sync_ - t0)
          .count()));
  return Status::OK();
}

Status WalWriter::Close() {
  StopFlusher();
  if (fd_ < 0) return Status::OK();
  Status s;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    s = dirty_ ? SyncLocked() : Status::OK();
  }
  if (::close(fd_) != 0 && s.ok()) {
    s = Status::IoError(ErrnoMessage("close wal segment", path_));
  }
  fd_ = -1;
  return s;
}

Result<WalReadResult> ReadWalFrames(
    const std::string& path, uint64_t expected_seq,
    uint64_t expected_fingerprint, uint64_t max_bytes,
    const std::function<Status(std::string_view payload)>& apply) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open wal segment " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  if (max_bytes != 0 && data.size() > max_bytes) data.resize(max_bytes);

  WalReadResult result;
  if (data.size() < kWalHeaderSize) {
    // Crash during segment creation: the header never fully reached disk.
    result.torn_tail = !data.empty();
    result.valid_bytes = 0;
    return result;
  }
  if (std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption("bad wal magic in " + path);
  }
  const uint64_t seq =
      static_cast<uint64_t>(DecodeFixed32(data.data() + 8)) |
      static_cast<uint64_t>(DecodeFixed32(data.data() + 12)) << 32;
  if (seq != expected_seq) {
    return Status::Corruption("wal segment " + path + " carries sequence " +
                              std::to_string(seq) + ", expected " +
                              std::to_string(expected_seq));
  }
  const uint64_t fp =
      static_cast<uint64_t>(DecodeFixed32(data.data() + 16)) |
      static_cast<uint64_t>(DecodeFixed32(data.data() + 20)) << 32;
  if (fp != expected_fingerprint) {
    return Status::Corruption(
        "wal segment " + path +
        " was written under a different schema (fingerprint mismatch)");
  }

  size_t pos = kWalHeaderSize;
  result.valid_bytes = pos;
  while (pos < data.size()) {
    if (data.size() - pos < kWalFrameHeaderSize) {
      result.torn_tail = true;  // frame header itself is incomplete
      break;
    }
    const uint32_t len = DecodeFixed32(data.data() + pos);
    const uint32_t masked_crc = DecodeFixed32(data.data() + pos + 4);
    if (len > kMaxWalRecordBytes) {
      return Status::Corruption("wal frame at offset " + std::to_string(pos) +
                                " in " + path + " has implausible length " +
                                std::to_string(len));
    }
    if (data.size() - pos - kWalFrameHeaderSize < len) {
      result.torn_tail = true;  // payload extends past EOF
      break;
    }
    const char* payload = data.data() + pos + kWalFrameHeaderSize;
    const uint32_t actual = Crc32c(payload, static_cast<size_t>(len));
    if (UnmaskCrc(masked_crc) != actual) {
      return Status::Corruption("wal crc mismatch at offset " +
                                std::to_string(pos) + " in " + path);
    }
    NEPAL_RETURN_NOT_OK(apply(std::string_view(payload, len)));
    pos += kWalFrameHeaderSize + len;
    result.valid_bytes = pos;
    ++result.records;
  }
  return result;
}

Result<WalReadResult> ReadWalSegment(
    const std::string& path, uint64_t expected_seq,
    uint64_t expected_fingerprint,
    const std::function<Status(const WalRecord&)>& apply) {
  return ReadWalFrames(path, expected_seq, expected_fingerprint, 0,
                       [&](std::string_view payload) -> Status {
                         NEPAL_ASSIGN_OR_RETURN(WalRecord rec,
                                                DecodeWalRecord(payload));
                         return apply(rec);
                       });
}

}  // namespace nepal::persist
