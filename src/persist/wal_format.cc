#include "persist/wal_format.h"

#include "common/binary.h"

namespace nepal::persist {

void EncodeWalRecord(const WalRecord& rec, std::string* out) {
  PutFixed8(out, static_cast<uint8_t>(rec.type));
  PutFixedI64(out, rec.time);
  switch (rec.type) {
    case WalRecordType::kSetTime:
      break;
    case WalRecordType::kAddNode:
    case WalRecordType::kAddEdge:
      PutFixed64(out, rec.uid);
      PutString(out, rec.class_name);
      if (rec.type == WalRecordType::kAddEdge) {
        PutFixed64(out, rec.source);
        PutFixed64(out, rec.target);
      }
      PutFixed32(out, static_cast<uint32_t>(rec.row.size()));
      for (const Value& v : rec.row) v.EncodeBinary(out);
      break;
    case WalRecordType::kUpdate:
      PutFixed64(out, rec.uid);
      PutFixed32(out, static_cast<uint32_t>(rec.changes.size()));
      for (const auto& [idx, v] : rec.changes) {
        PutFixed32(out, static_cast<uint32_t>(idx));
        v.EncodeBinary(out);
      }
      break;
    case WalRecordType::kRemove:
      PutFixed64(out, rec.uid);
      break;
  }
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  BinaryReader reader(payload);
  WalRecord rec;
  uint8_t type = 0;
  NEPAL_RETURN_NOT_OK(reader.ReadFixed8(&type));
  NEPAL_RETURN_NOT_OK(reader.ReadFixedI64(&rec.time));
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kSetTime:
      rec.type = WalRecordType::kSetTime;
      break;
    case WalRecordType::kAddNode:
    case WalRecordType::kAddEdge: {
      rec.type = static_cast<WalRecordType>(type);
      NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&rec.uid));
      NEPAL_RETURN_NOT_OK(reader.ReadString(&rec.class_name));
      if (rec.type == WalRecordType::kAddEdge) {
        NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&rec.source));
        NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&rec.target));
      }
      uint32_t n = 0;
      NEPAL_RETURN_NOT_OK(reader.ReadFixed32(&n));
      if (n > reader.remaining()) {
        return Status::Corruption("wal record row length " +
                                  std::to_string(n) +
                                  " exceeds remaining payload");
      }
      rec.row.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        NEPAL_ASSIGN_OR_RETURN(Value v, Value::DecodeBinary(&reader));
        rec.row.push_back(std::move(v));
      }
      break;
    }
    case WalRecordType::kUpdate: {
      rec.type = WalRecordType::kUpdate;
      NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&rec.uid));
      uint32_t n = 0;
      NEPAL_RETURN_NOT_OK(reader.ReadFixed32(&n));
      if (n > reader.remaining()) {
        return Status::Corruption("wal record change count " +
                                  std::to_string(n) +
                                  " exceeds remaining payload");
      }
      rec.changes.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t idx = 0;
        NEPAL_RETURN_NOT_OK(reader.ReadFixed32(&idx));
        NEPAL_ASSIGN_OR_RETURN(Value v, Value::DecodeBinary(&reader));
        rec.changes.emplace_back(static_cast<int>(idx), std::move(v));
      }
      break;
    }
    case WalRecordType::kRemove:
      rec.type = WalRecordType::kRemove;
      NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&rec.uid));
      break;
    default:
      return Status::Corruption("unknown wal record type " +
                                std::to_string(type));
  }
  if (!reader.done()) {
    return Status::Corruption("wal record has " +
                              std::to_string(reader.remaining()) +
                              " trailing byte(s)");
  }
  return rec;
}

uint64_t SchemaFingerprint(const schema::Schema& schema) {
  const std::string dsl = schema.ToDsl();
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (char c : dsl) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV-1a prime
  }
  return hash;
}

}  // namespace nepal::persist
