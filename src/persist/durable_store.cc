#include "persist/durable_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <shared_mutex>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "persist/wal_format.h"
#include "stats/stats.h"

namespace nepal::persist {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSegmentPrefix = "wal-";
constexpr const char* kSegmentSuffix = ".log";
constexpr const char* kCheckpointPrefix = "checkpoint-";
constexpr const char* kCheckpointSuffix = ".ckp";

/// Parses "<prefix><digits><suffix>" file names; false for anything else.
bool ParseSeq(const std::string& name, const char* prefix, const char* suffix,
              uint64_t* seq) {
  const size_t plen = std::strlen(prefix);
  const size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  uint64_t v = 0;
  for (size_t i = plen; i < name.size() - slen; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = v;
  return true;
}

struct DirListing {
  std::vector<uint64_t> segments;     // ascending
  std::vector<uint64_t> checkpoints;  // ascending
};

Result<DirListing> ListDataDir(const std::string& dir) {
  DirListing out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (ParseSeq(name, kSegmentPrefix, kSegmentSuffix, &seq)) {
      out.segments.push_back(seq);
    } else if (ParseSeq(name, kCheckpointPrefix, kCheckpointSuffix, &seq)) {
      out.checkpoints.push_back(seq);
    }
  }
  if (ec) {
    return Status::IoError("cannot list data directory " + dir + ": " +
                           ec.message());
  }
  std::sort(out.segments.begin(), out.segments.end());
  std::sort(out.checkpoints.begin(), out.checkpoints.end());
  return out;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Restores checkpoint contents onto a freshly constructed GraphDb.
Status RestoreFromCheckpoint(storage::GraphDb& db, CheckpointContents ckpt) {
  for (auto& [uid, chain] : ckpt.chains) {
    NEPAL_RETURN_NOT_OK(db.backend().RestoreChain(uid, std::move(chain)));
  }
  NEPAL_RETURN_NOT_OK(db.backend().FinishRestore());
  NEPAL_ASSIGN_OR_RETURN(
      stats::GraphStats stats,
      stats::GraphStats::DeserializeFrom(&db.schema(), ckpt.stats_blob));
  db.backend().RestoreStats(std::move(stats));
  return db.AdoptRecoveredState(ckpt.now, ckpt.next_uid);
}

}  // namespace

std::string WalSegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string CheckpointFileName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%08llu.ckp",
                static_cast<unsigned long long>(seq));
  return buf;
}

Status ApplyWalRecord(storage::GraphDb& db, const WalRecord& rec) {
  switch (rec.type) {
    case WalRecordType::kSetTime:
      return db.SetTime(rec.time);
    case WalRecordType::kAddNode:
    case WalRecordType::kAddEdge: {
      NEPAL_RETURN_NOT_OK(db.SyncNextUid(rec.uid));
      NEPAL_ASSIGN_OR_RETURN(const schema::ClassDef* cls,
                             db.schema().GetClass(rec.class_name));
      if (rec.row.size() != cls->fields().size()) {
        return Status::Corruption(
            "wal row for uid " + std::to_string(rec.uid) + " has " +
            std::to_string(rec.row.size()) + " fields, class " +
            rec.class_name + " declares " +
            std::to_string(cls->fields().size()));
      }
      schema::FieldValues fields;
      for (size_t i = 0; i < rec.row.size(); ++i) {
        if (rec.row[i].is_null()) continue;
        fields.emplace_back(cls->fields()[i].name, rec.row[i]);
      }
      Result<Uid> got =
          rec.type == WalRecordType::kAddNode
              ? db.AddNode(rec.class_name, fields)
              : db.AddEdge(rec.class_name, rec.source, rec.target, fields);
      if (!got.ok()) return got.status();
      if (*got != rec.uid) {
        return Status::Corruption(
            "wal replay assigned uid " + std::to_string(*got) +
            " where the log recorded " + std::to_string(rec.uid));
      }
      return Status::OK();
    }
    case WalRecordType::kUpdate: {
      NEPAL_ASSIGN_OR_RETURN(storage::ElementVersion cur,
                             db.GetCurrent(rec.uid));
      schema::FieldValues fields;
      for (const auto& [idx, value] : rec.changes) {
        if (idx < 0 ||
            static_cast<size_t>(idx) >= cur.cls->fields().size()) {
          return Status::Corruption(
              "wal update for uid " + std::to_string(rec.uid) +
              " touches field index " + std::to_string(idx) +
              " outside class " + cur.cls->name());
        }
        fields.emplace_back(cur.cls->fields()[static_cast<size_t>(idx)].name,
                            value);
      }
      return db.UpdateElement(rec.uid, fields);
    }
    case WalRecordType::kRemove:
      return db.RemoveElement(rec.uid);
  }
  return Status::Corruption("unknown wal record type during replay");
}

Status ApplyWalRecordBatch(storage::GraphDb& db,
                           const std::vector<WalRecord>& recs) {
  if (recs.empty()) return Status::OK();
  std::vector<storage::Mutation> muts;
  muts.reserve(recs.size());
  for (const WalRecord& rec : recs) {
    switch (rec.type) {
      case WalRecordType::kSetTime:
        muts.push_back(storage::Mutation::SetTime(rec.time));
        break;
      case WalRecordType::kAddNode:
      case WalRecordType::kAddEdge: {
        NEPAL_ASSIGN_OR_RETURN(const schema::ClassDef* cls,
                               db.schema().GetClass(rec.class_name));
        if (rec.row.size() != cls->fields().size()) {
          return Status::Corruption(
              "wal row for uid " + std::to_string(rec.uid) + " has " +
              std::to_string(rec.row.size()) + " fields, class " +
              rec.class_name + " declares " +
              std::to_string(cls->fields().size()));
        }
        schema::FieldValues fields;
        for (size_t i = 0; i < rec.row.size(); ++i) {
          if (rec.row[i].is_null()) continue;
          fields.emplace_back(cls->fields()[i].name, rec.row[i]);
        }
        storage::Mutation m =
            rec.type == WalRecordType::kAddNode
                ? storage::Mutation::AddNode(rec.class_name,
                                             std::move(fields))
                : storage::Mutation::AddEdge(rec.class_name, rec.source,
                                             rec.target, std::move(fields));
        m.forced_uid = rec.uid;
        muts.push_back(std::move(m));
        break;
      }
      case WalRecordType::kUpdate: {
        storage::Mutation m = storage::Mutation::Update(rec.uid, {});
        m.use_raw_changes = true;
        m.raw_changes = rec.changes;
        muts.push_back(std::move(m));
        break;
      }
      case WalRecordType::kRemove:
        muts.push_back(storage::Mutation::Remove(rec.uid));
        break;
      default:
        return Status::Corruption("unknown wal record type during replay");
    }
  }
  NEPAL_RETURN_NOT_OK(db.ApplyBatch(muts));
  for (size_t i = 0; i < recs.size(); ++i) {
    if ((recs[i].type == WalRecordType::kAddNode ||
         recs[i].type == WalRecordType::kAddEdge) &&
        muts[i].uid != recs[i].uid) {
      return Status::Corruption(
          "wal replay assigned uid " + std::to_string(muts[i].uid) +
          " where the log recorded " + std::to_string(recs[i].uid));
    }
  }
  return Status::OK();
}

DurableStore::DurableStore(std::string dir, uint64_t fingerprint,
                           DurableOptions options)
    : dir_(std::move(dir)), fingerprint_(fingerprint), options_(options) {}

DurableStore::~DurableStore() {
  if (db_ != nullptr) db_->set_write_log(nullptr);
  if (writer_ != nullptr) writer_->Close().IgnoreError();
  // Wake subscribers: they drain what is already buffered, then see
  // kUnavailable("primary closed").
  std::vector<std::shared_ptr<WalSubscription>> subs;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs.swap(subs_);
  }
  for (const auto& sub : subs) sub->MarkClosed();
  UpdateSubscriberGauge();
}

std::string DurableStore::SegmentPath(uint64_t seq) const {
  return dir_ + "/" + WalSegmentFileName(seq);
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    std::string dir, schema::SchemaPtr schema, const BackendFactory& factory,
    DurableOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create data directory " + dir + ": " +
                           ec.message());
  }
  const uint64_t fingerprint = SchemaFingerprint(*schema);
  auto store = std::unique_ptr<DurableStore>(
      new DurableStore(std::move(dir), fingerprint, options));

  NEPAL_ASSIGN_OR_RETURN(DirListing listing, ListDataDir(store->dir_));
  store->checkpoints_ = listing.checkpoints;

  auto& reg = obs::MetricsRegistry::Global();
  const auto t0 = std::chrono::steady_clock::now();

  // Restore the newest checkpoint that loads cleanly; a fresh database per
  // attempt, so a half-restored state never leaks into the next try.
  RecoveryInfo info;
  uint64_t replay_from = 1;
  for (auto it = listing.checkpoints.rbegin();
       it != listing.checkpoints.rend(); ++it) {
    auto db = std::make_unique<storage::GraphDb>(schema,
                                                 factory(schema));
    Result<CheckpointContents> loaded = LoadCheckpoint(
        store->dir_ + "/" + CheckpointFileName(*it), *schema);
    if (loaded.ok() && loaded->fingerprint != fingerprint) {
      return Status::Corruption(
          "checkpoint " + CheckpointFileName(*it) +
          " was written under a different schema (fingerprint mismatch)");
    }
    Status restored = loaded.ok()
                          ? RestoreFromCheckpoint(*db, std::move(*loaded))
                          : loaded.status();
    if (restored.ok()) {
      info.restored_checkpoint = true;
      info.checkpoint_seq = *it;
      replay_from = *it;
      store->db_ = std::move(db);
      break;
    }
    if (restored.code() != StatusCode::kCorruption &&
        restored.code() != StatusCode::kIoError) {
      return restored;  // invariant breakage, not damage — do not mask it
    }
    ++info.checkpoints_skipped;
  }
  if (store->db_ == nullptr) {
    if (!listing.checkpoints.empty() &&
        (listing.segments.empty() || listing.segments.front() != 1)) {
      return Status::Corruption(
          "no checkpoint in " + store->dir_ +
          " is readable and the WAL does not reach back to segment 1");
    }
    store->db_ = std::make_unique<storage::GraphDb>(schema,
                                                    factory(schema));
  }

  // Replay the WAL tail: segments >= replay_from, contiguous, torn tail
  // tolerated only in the last one.
  std::vector<uint64_t> tail;
  for (uint64_t seq : listing.segments) {
    if (seq >= replay_from) tail.push_back(seq);
  }
  if (!tail.empty() && tail.front() != replay_from &&
      info.restored_checkpoint) {
    return Status::Corruption(
        "missing wal segment " + std::to_string(replay_from) + " in " +
        store->dir_ + " (oldest on disk is " + std::to_string(tail.front()) +
        ")");
  }
  for (size_t i = 0; i < tail.size(); ++i) {
    if (i > 0 && tail[i] != tail[i - 1] + 1) {
      return Status::Corruption("missing wal segment " +
                                std::to_string(tail[i - 1] + 1) + " in " +
                                store->dir_);
    }
    NEPAL_ASSIGN_OR_RETURN(
        WalReadResult r,
        ReadWalSegment(store->SegmentPath(tail[i]), tail[i], fingerprint,
                       [&store](const WalRecord& rec) {
                         return ApplyWalRecord(*store->db_, rec);
                       }));
    if (r.torn_tail && i + 1 != tail.size()) {
      return Status::Corruption(
          "wal segment " + std::to_string(tail[i]) +
          " has a torn tail but is not the last segment");
    }
    info.torn_tail = info.torn_tail || r.torn_tail;
    info.records_replayed += r.records;
    ++info.segments_replayed;
  }

  // Open a fresh segment: never append to a file that may end torn.
  const uint64_t next_seq =
      listing.segments.empty()
          ? replay_from
          : listing.segments.back() + 1;
  NEPAL_ASSIGN_OR_RETURN(
      store->writer_,
      WalWriter::Create(store->SegmentPath(next_seq), next_seq, fingerprint,
                        WalWriterOptions{options.fsync_policy,
                                         options.fsync_interval_ms}));

  store->recovery_info_ = info;
  store->db_->set_write_log(store.get());

  reg.GetCounter("nepal.recovery.records_replayed")
      ->Add(info.records_replayed);
  reg.GetCounter("nepal.recovery.segments_replayed")
      ->Add(info.segments_replayed);
  if (info.torn_tail) reg.GetCounter("nepal.recovery.torn_tails")->Add(1);
  reg.GetCounter("nepal.recovery.checkpoints_skipped")
      ->Add(static_cast<uint64_t>(info.checkpoints_skipped));
  reg.GetHistogram("nepal.recovery.replay_ns")->Observe(ElapsedNs(t0));
  return store;
}

Status DurableStore::Checkpoint() {
  std::lock_guard<std::mutex> admin(admin_mu_);
  return CheckpointLocked();
}

Status DurableStore::CheckpointLocked() {
  const auto t0 = std::chrono::steady_clock::now();
  std::string image;
  uint64_t seq = 0;
  {
    // Shared on the database mutex: writers are excluded, so the clock,
    // allocator, backend contents and log rotation form one consistent cut.
    std::shared_lock<std::shared_mutex> lock(db_->mutex());
    seq = writer_->segment_seq() + 1;
    NEPAL_RETURN_NOT_OK(writer_->Close());
    NEPAL_ASSIGN_OR_RETURN(
        writer_,
        WalWriter::Create(SegmentPath(seq), seq, fingerprint_,
                          WalWriterOptions{options_.fsync_policy,
                                           options_.fsync_interval_ms}));
    image = EncodeCheckpointLocked(*db_, fingerprint_, seq);
  }
  NEPAL_RETURN_NOT_OK(WriteFileAtomic(dir_, CheckpointFileName(seq), image));
  checkpoints_.push_back(seq);
  PruneLocked();
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("nepal.checkpoint.writes")->Add(1);
  reg.GetCounter("nepal.checkpoint.bytes")->Add(image.size());
  reg.GetHistogram("nepal.checkpoint.save_ns")->Observe(ElapsedNs(t0));
  return Status::OK();
}

void DurableStore::PruneLocked() {
  if (checkpoints_.size() > static_cast<size_t>(options_.retain_checkpoints)) {
    const size_t drop =
        checkpoints_.size() - static_cast<size_t>(options_.retain_checkpoints);
    for (size_t i = 0; i < drop; ++i) {
      std::error_code ec;
      fs::remove(dir_ + "/" + CheckpointFileName(checkpoints_[i]), ec);
    }
    checkpoints_.erase(checkpoints_.begin(),
                       checkpoints_.begin() + static_cast<long>(drop));
  }
  if (checkpoints_.empty()) return;
  // Segments before the oldest retained checkpoint can never be replayed —
  // but a live subscriber still catching up from disk may not have read
  // them yet (Checkpoint() rotates first, so the just-closed segment would
  // otherwise be instantly prunable). The retention floor is the minimum
  // over live subscribers of the lowest segment they still need.
  uint64_t pin = checkpoints_.front();
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (auto it = subs_.begin(); it != subs_.end();) {
      const auto& sub = *it;
      if (sub->lagged() || sub->closed()) {
        it = subs_.erase(it);  // they never resume; unpin them
        continue;
      }
      pin = std::min(pin, sub->min_needed_seq());
      ++it;
    }
  }
  UpdateSubscriberGauge();
  auto listing = ListDataDir(dir_);
  if (!listing.ok()) return;  // pruning is best-effort
  for (uint64_t seq : listing->segments) {
    if (seq >= pin) break;
    std::error_code ec;
    fs::remove(SegmentPath(seq), ec);
  }
}

Status DurableStore::Sync() {
  std::lock_guard<std::mutex> admin(admin_mu_);
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return writer_->Sync();
}

Status DurableStore::SaveSnapshot(const std::string& dir,
                                  const storage::GraphDb& db) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot directory " + dir + ": " +
                           ec.message());
  }
  NEPAL_ASSIGN_OR_RETURN(DirListing listing, ListDataDir(dir));
  if (!listing.segments.empty() || !listing.checkpoints.empty()) {
    return Status::AlreadyExists("directory " + dir +
                                 " already holds Nepal data files");
  }
  std::string image;
  {
    std::shared_lock<std::shared_mutex> lock(db.mutex());
    image = EncodeCheckpointLocked(db, SchemaFingerprint(db.schema()),
                                   /*wal_seq=*/1);
  }
  return WriteFileAtomic(dir, CheckpointFileName(1), image);
}

Status DurableStore::Append(const storage::WalRecord& rec) {
  std::string payload;
  {
    obs::ScopedSpan span("wal.encode");
    EncodeWalRecord(rec, &payload);
  }
  NEPAL_RETURN_NOT_OK(writer_->Append(payload));
  const uint64_t record =
      records_appended_.fetch_add(1, std::memory_order_release) + 1;
  obs::ScopedSpan span("publish");
  PublishFrame(writer_->segment_seq(), payload, record);
  return Status::OK();
}

Status DurableStore::AppendBatch(const std::vector<storage::WalRecord>& recs) {
  if (recs.empty()) return Status::OK();
  std::vector<std::string> payloads;
  payloads.reserve(recs.size());
  {
    obs::ScopedSpan span("wal.encode");
    for (const storage::WalRecord& rec : recs) {
      std::string payload;
      EncodeWalRecord(rec, &payload);
      payloads.push_back(std::move(payload));
    }
  }
  NEPAL_RETURN_NOT_OK(writer_->AppendGroup(payloads));
  const uint64_t first_record =
      records_appended_.fetch_add(recs.size(), std::memory_order_release) + 1;
  obs::ScopedSpan span("publish");
  PublishFrames(writer_->segment_seq(), payloads, first_record);
  return Status::OK();
}

void DurableStore::PublishFrames(uint64_t segment_seq,
                                 const std::vector<std::string>& payloads,
                                 uint64_t first_record) {
  bool dropped = false;
  uint64_t lagged = 0;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    if (subs_.empty()) return;
    const int64_t shipped_at_us = WallClockMicros();
    const uint64_t commit_epoch = db_->commit_epoch();
    // Propagate the committing thread's trace context with the group so a
    // follower's apply spans can join the primary's commit trace.
    const obs::TraceContext& tctx = obs::Tracer::CurrentContext();
    const uint64_t trace_id = tctx.trace ? tctx.trace->trace_id() : 0;
    const uint32_t root_span = tctx.trace ? tctx.trace->root_span() : 0;
    size_t bytes = 0;
    uint64_t record = first_record;
    for (const std::string& payload : payloads) {
      bytes += payload.size();
      for (auto it = subs_.begin(); it != subs_.end();) {
        const auto& sub = *it;
        const bool was_lagged = sub->lagged();
        sub->PushLive(WalShipFrame{segment_seq, shipped_at_us, trace_id,
                                   root_span, payload, commit_epoch, record});
        if (sub->lagged() || sub->closed()) {
          if (!was_lagged && sub->lagged()) ++lagged;
          it = subs_.erase(it);
          dropped = true;
        } else {
          ++it;
        }
      }
      ++record;
    }
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("nepal.replication.shipped_records")
        ->Add(payloads.size());
    reg.GetCounter("nepal.replication.shipped_bytes")->Add(bytes);
    if (lagged > 0) {
      reg.GetCounter("nepal.replication.lagged_drops")->Add(lagged);
    }
  }
  if (dropped) UpdateSubscriberGauge();
}

void DurableStore::PublishFrame(uint64_t segment_seq,
                                const std::string& payload, uint64_t record) {
  bool dropped = false;
  uint64_t lagged = 0;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    if (subs_.empty()) return;
    const int64_t shipped_at_us = WallClockMicros();
    const uint64_t commit_epoch = db_->commit_epoch();
    const obs::TraceContext& tctx = obs::Tracer::CurrentContext();
    const uint64_t trace_id = tctx.trace ? tctx.trace->trace_id() : 0;
    const uint32_t root_span = tctx.trace ? tctx.trace->root_span() : 0;
    for (auto it = subs_.begin(); it != subs_.end();) {
      const auto& sub = *it;
      const bool was_lagged = sub->lagged();
      sub->PushLive(WalShipFrame{segment_seq, shipped_at_us, trace_id,
                                 root_span, payload, commit_epoch, record});
      if (sub->lagged() || sub->closed()) {
        if (!was_lagged && sub->lagged()) ++lagged;
        it = subs_.erase(it);
        dropped = true;
      } else {
        ++it;
      }
    }
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("nepal.replication.shipped_records")->Add(1);
    reg.GetCounter("nepal.replication.shipped_bytes")->Add(payload.size());
    if (lagged > 0) {
      reg.GetCounter("nepal.replication.lagged_drops")->Add(lagged);
    }
  }
  if (dropped) UpdateSubscriberGauge();
}

void DurableStore::UpdateSubscriberGauge() {
  size_t n;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    n = subs_.size();
  }
  obs::MetricsRegistry::Global()
      .GetGauge("nepal.replication.subscribers")
      ->Set(static_cast<int64_t>(n));
}

Result<std::shared_ptr<WalSubscription>> DurableStore::Subscribe(
    SubscribeOptions options) {
  // admin_mu_ spans image read + registration so a concurrent Checkpoint()
  // cannot prune the bootstrap checkpoint's segments before the new
  // subscription's retention pin is visible.
  std::lock_guard<std::mutex> admin(admin_mu_);
  std::string image;
  uint64_t start_seq = 0;
  uint64_t skip_records = 0;
  if (options.resume_seq > 0) {
    // Resume: no image — the follower holds the state already. Every
    // segment from resume_seq on must still be on disk (pruning only ever
    // deletes a prefix, so checking the oldest survivor suffices).
    NEPAL_ASSIGN_OR_RETURN(DirListing listing, ListDataDir(dir_));
    if (listing.segments.empty() ||
        listing.segments.front() > options.resume_seq) {
      return Status::NotFound(
          "wal segment " + std::to_string(options.resume_seq) +
          " has been pruned; resume is unavailable — re-bootstrap");
    }
    start_seq = options.resume_seq;
    skip_records = options.resume_skip_records;
  } else {
    if (checkpoints_.empty()) {
      NEPAL_RETURN_NOT_OK(CheckpointLocked());
    }
    start_seq = checkpoints_.back();
    const std::string ckpt_path = dir_ + "/" + CheckpointFileName(start_seq);
    std::ifstream in(ckpt_path, std::ios::binary);
    if (!in) {
      return Status::IoError("cannot read checkpoint image " + ckpt_path);
    }
    image.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  std::shared_ptr<WalSubscription> sub;
  {
    // Shared on the database mutex: writers are excluded, so the active
    // segment's (seq, size) is a frozen attach point — every commit at or
    // before it is on disk, every commit after it will be pushed live.
    std::shared_lock<std::shared_mutex> db_lock(db_->mutex());
    if (options.resume_seq > writer_->segment_seq()) {
      return Status::InvalidArgument(
          "resume segment " + std::to_string(options.resume_seq) +
          " is beyond the active segment " +
          std::to_string(writer_->segment_seq()));
    }
    sub = std::shared_ptr<WalSubscription>(new WalSubscription(
        dir_, fingerprint_, std::move(image), start_seq,
        writer_->segment_seq(), writer_->bytes_written(),
        options.max_buffered_bytes, skip_records));
    std::lock_guard<std::mutex> lock(subs_mu_);
    subs_.push_back(sub);
  }
  UpdateSubscriberGauge();
  return sub;
}

void DurableStore::SetSemiSync(SemiSyncOptions options) {
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    semisync_ = options;
    semisync_degraded_ = false;
  }
  ack_cv_.notify_all();
  obs::MetricsRegistry::Global()
      .GetGauge("nepal.replication.semisync.degraded")
      ->Set(0);
}

bool DurableStore::semisync_degraded() const {
  std::lock_guard<std::mutex> lock(ack_mu_);
  return semisync_degraded_;
}

uint64_t DurableStore::RegisterAckSource(const std::string& name) {
  std::lock_guard<std::mutex> lock(ack_mu_);
  const uint64_t id = next_ack_id_++;
  ack_sources_[id] = AckSource{name, 0};
  return id;
}

void DurableStore::UnregisterAckSource(uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    ack_sources_.erase(id);
  }
  // A waiter counting on this follower must re-evaluate (and possibly time
  // out) rather than sleep on a source that will never ack again.
  ack_cv_.notify_all();
}

void DurableStore::ReportAck(uint64_t id, uint64_t acked_records) {
  {
    std::lock_guard<std::mutex> lock(ack_mu_);
    auto it = ack_sources_.find(id);
    if (it == ack_sources_.end()) return;
    if (acked_records > it->second.acked) it->second.acked = acked_records;
  }
  ack_cv_.notify_all();
}

void DurableStore::WaitCommitted(uint64_t token) {
  auto& reg = obs::MetricsRegistry::Global();
  std::unique_lock<std::mutex> lock(ack_mu_);
  if (semisync_.quorum <= 0 || token == 0) return;
  const auto satisfied = [&] {
    int n = 0;
    for (const auto& [id, src] : ack_sources_) {
      if (src.acked >= token) ++n;
    }
    return n >= semisync_.quorum;
  };
  if (semisync_degraded_) {
    // Degraded mode: never wait. Re-arm only once the quorum has caught
    // back up, so a hung follower costs one timeout, not one per commit.
    if (satisfied()) {
      semisync_degraded_ = false;
      reg.GetGauge("nepal.replication.semisync.degraded")->Set(0);
      reg.GetCounter("nepal.replication.semisync.recoveries")->Add(1);
    }
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (ack_cv_.wait_for(lock, std::chrono::milliseconds(semisync_.timeout_ms),
                       satisfied)) {
    reg.GetCounter("nepal.replication.semisync.acked_commits")->Add(1);
    reg.GetHistogram("nepal.replication.semisync.wait_ns")
        ->Observe(ElapsedNs(t0));
  } else {
    semisync_degraded_ = true;
    reg.GetCounter("nepal.replication.semisync.timeouts")->Add(1);
    reg.GetGauge("nepal.replication.semisync.degraded")->Set(1);
  }
}

WalSubscription::WalSubscription(std::string dir, uint64_t fingerprint,
                                 std::string checkpoint_image,
                                 uint64_t start_seq, uint64_t attach_seq,
                                 uint64_t attach_offset,
                                 size_t max_buffered_bytes,
                                 uint64_t skip_records)
    : dir_(std::move(dir)),
      fingerprint_(fingerprint),
      checkpoint_image_(std::move(checkpoint_image)),
      start_seq_(start_seq),
      attach_seq_(attach_seq),
      attach_offset_(attach_offset),
      max_buffered_bytes_(max_buffered_bytes),
      skip_records_(skip_records),
      floor_(start_seq),
      next_disk_seq_(start_seq) {}

Status WalSubscription::FillFromDiskLocked() {
  const uint64_t seq = next_disk_seq_;
  const uint64_t limit = seq == attach_seq_ ? attach_offset_ : 0;
  auto read = ReadWalFrames(
      dir_ + "/" + WalSegmentFileName(seq), seq, fingerprint_, limit,
      [&](std::string_view payload) -> Status {
        if (skip_records_ > 0) {
          // Resume: the consumer already applied this prefix of its first
          // segment before the disconnect.
          --skip_records_;
          return Status::OK();
        }
        pending_.push_back(
            WalShipFrame{seq, /*shipped_at_us=*/0, /*trace_id=*/0,
                         /*root_span=*/0, std::string(payload)});
        return Status::OK();
      });
  if (!read.ok()) return read.status();
  if (skip_records_ > 0) {
    // Everything the consumer ever applied was on disk before the attach
    // point froze (appends hit the segment file before they are published),
    // so a leftover skip means the claimed position does not belong to this
    // log.
    return Status::Corruption(
        "resume position overshoots wal segment " + std::to_string(seq) +
        " by " + std::to_string(skip_records_) + " record(s)");
  }
  ++next_disk_seq_;
  // Everything up to this segment is buffered in memory now; the store may
  // prune it.
  floor_.store(next_disk_seq_, std::memory_order_release);
  return Status::OK();
}

Result<bool> WalSubscription::Next(WalShipFrame* frame,
                                   std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  // Catch-up phase: drain the closed portion of the log from disk.
  while (pending_.empty() && next_disk_seq_ <= attach_seq_) {
    NEPAL_RETURN_NOT_OK(FillFromDiskLocked());
  }
  if (!pending_.empty()) {
    *frame = std::move(pending_.front());
    pending_.pop_front();
    return true;
  }
  // Live phase. Buffered frames are delivered even after close, so a
  // shutting-down primary's final commits still reach the follower.
  cv_.wait_for(lock, timeout,
               [&] { return !live_.empty() || closed_ || lagged_; });
  if (!live_.empty()) {
    *frame = std::move(live_.front());
    live_.pop_front();
    live_bytes_ -= frame->payload.size();
    return true;
  }
  if (lagged_) {
    return Status::Unavailable(
        "wal subscription lagged: live buffer exceeded " +
        std::to_string(max_buffered_bytes_) +
        " bytes; the follower must re-bootstrap");
  }
  if (closed_) {
    return Status::Unavailable("wal subscription closed: primary closed");
  }
  return false;  // timeout, no data yet
}

void WalSubscription::PushLive(WalShipFrame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || lagged_) return;
  live_bytes_ += frame.payload.size();
  if (live_bytes_ > max_buffered_bytes_) {
    // The stream now has a hole; drop the buffer rather than deliver a
    // prefix the consumer could mistake for a complete log.
    lagged_ = true;
    live_.clear();
    live_bytes_ = 0;
  } else {
    live_.push_back(std::move(frame));
  }
  cv_.notify_all();
}

void WalSubscription::MarkClosed() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

void WalSubscription::Cancel() {
  MarkClosed();
  // Stop pinning retention: this subscriber will not read from disk again.
  floor_.store(attach_seq_ + 1, std::memory_order_release);
}

}  // namespace nepal::persist
