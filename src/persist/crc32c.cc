#include "persist/crc32c.h"

namespace nepal::persist {

namespace {

constexpr uint32_t kCastagnoliPoly = 0x82f63b78u;  // reflected 0x1EDC6F41

struct Crc32cTable {
  uint32_t entries[256];
  constexpr Crc32cTable() : entries{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kCastagnoliPoly : 0);
      }
      entries[i] = crc;
    }
  }
};

constexpr Crc32cTable kTable;

constexpr uint32_t kMaskDelta = 0xa282ead8u;

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable.entries[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace nepal::persist
