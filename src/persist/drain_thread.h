// DrainThread: the shutdown-safe consumer-thread pattern for WAL
// subscribers (and other poll loops), extracted so every
// WalSubscription consumer tears down the same way.
//
// The hazard it encodes: a subscriber's drain loop blocks inside
// WalSubscription::Next() while the primary may simultaneously be
// publishing under its `subs_mu_`. A teardown that joins the drain thread
// while holding any lock the loop body needs — or that forgets to wake the
// blocked Next() — deadlocks. The safe ordering is always:
//
//   1. set the stop flag (the loop exits at its next check),
//   2. wake the loop if it can block (WalSubscription::Cancel() only takes
//      the subscription's own mutex, never the store's `subs_mu_`, so it
//      is safe to call from any thread at any time),
//   3. join.
//
// Usage:
//
//   DrainThread drain;
//   drain.Start(
//       [this](const std::atomic<bool>& stop) {
//         while (!stop.load(std::memory_order_acquire)) { ... Next() ... }
//       },
//       /*wake=*/[sub] { sub->Cancel(); });
//   ...
//   drain.Stop();  // idempotent; also run by the destructor
//
// Both the replication follower (src/replication/replica_store.cc) and the
// materialized-view maintenance loop (src/views/view_catalog.cc) run on a
// DrainThread.

#ifndef NEPAL_PERSIST_DRAIN_THREAD_H_
#define NEPAL_PERSIST_DRAIN_THREAD_H_

#include <atomic>
#include <functional>
#include <thread>
#include <utility>

namespace nepal::persist {

class DrainThread {
 public:
  DrainThread() = default;
  ~DrainThread() { Stop(); }

  DrainThread(const DrainThread&) = delete;
  DrainThread& operator=(const DrainThread&) = delete;

  /// Spawns the consumer thread. `body` receives the stop flag and should
  /// poll it between blocking waits; `wake` (optional) is invoked by Stop()
  /// after the flag is set to interrupt a blocked wait. It must be callable
  /// from any thread without taking locks the loop body might hold.
  void Start(std::function<void(const std::atomic<bool>&)> body,
             std::function<void()> wake = nullptr) {
    wake_ = std::move(wake);
    stop_.store(false, std::memory_order_release);
    thread_ = std::thread(
        [this, body = std::move(body)] { body(stop_); });
  }

  /// Stops and joins the consumer thread: flag, wake, join — in that
  /// order. Idempotent; safe when Start() was never called.
  void Stop() {
    stop_.store(true, std::memory_order_release);
    if (wake_) wake_();
    if (thread_.joinable()) thread_.join();
  }

  /// True once Stop() has been requested (the loop body can consult this
  /// in addition to its own flag parameter).
  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  bool running() const { return thread_.joinable(); }

 private:
  std::atomic<bool> stop_{false};
  std::function<void()> wake_;
  std::thread thread_;
};

}  // namespace nepal::persist

#endif  // NEPAL_PERSIST_DRAIN_THREAD_H_
