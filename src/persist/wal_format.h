// Binary codec for the logical write-ahead-log record.
//
// The record type itself (storage::WalRecord) lives with the WriteLog hook
// in src/storage/write_log.h: GraphDb builds it once per commit and the
// same struct flows to disk, replication subscribers and replay. This
// header carries the persistence-side concerns: the canonical binary
// encoding (common/binary.h primitives) and the schema fingerprint that
// every segment header and checkpoint embeds. Replay drives the public
// GraphDb API, so a record stream reproduces the database on either
// execution backend — the same property the paper's feed loader has, but
// binary, lossless (structured values included) and covering the
// transaction clock.
//
// The physical framing (length + CRC32C) around each record lives in
// wal.h.

#ifndef NEPAL_PERSIST_WAL_FORMAT_H_
#define NEPAL_PERSIST_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "schema/schema.h"
#include "storage/write_log.h"

namespace nepal::persist {

// The logical record is a storage-layer type; persist callers historically
// named it through this namespace and may keep doing so.
using WalRecord = storage::WalRecord;
using WalRecordType = storage::WalRecordType;
using storage::WalRecordTypeToString;

/// Appends the canonical binary payload (excluding framing).
void EncodeWalRecord(const WalRecord& rec, std::string* out);

/// Inverse of EncodeWalRecord. Fails with Corruption on truncation, unknown
/// record types, or trailing bytes.
Result<WalRecord> DecodeWalRecord(std::string_view payload);

/// 64-bit FNV-1a of the schema's DSL rendering. Stored in every segment
/// header and checkpoint so recovery refuses to replay a log against a
/// database opened with a different schema.
uint64_t SchemaFingerprint(const schema::Schema& schema);

}  // namespace nepal::persist

#endif  // NEPAL_PERSIST_WAL_FORMAT_H_
