// Logical write-ahead-log records.
//
// The WAL carries the five mutations GraphDb serializes (SetTime, AddNode,
// AddEdge, Update, Remove) as self-contained logical records: class names
// instead of ClassDef pointers, full validated rows, and the uid the write
// was assigned. Replay drives the public GraphDb API, so a record stream
// reproduces the database on either execution backend — the same property
// the paper's feed loader has, but binary, lossless (structured values
// included) and covering the transaction clock.
//
// Records are encoded with the common/binary.h primitives; the physical
// framing (length + CRC32C) around each record lives in wal.h.

#ifndef NEPAL_PERSIST_WAL_FORMAT_H_
#define NEPAL_PERSIST_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/time.h"
#include "common/value.h"
#include "schema/schema.h"

namespace nepal::persist {

enum class WalRecordType : uint8_t {
  kSetTime = 1,
  kAddNode = 2,
  kAddEdge = 3,
  kUpdate = 4,
  kRemove = 5,
};

const char* WalRecordTypeToString(WalRecordType type);

/// One logical mutation. Only the fields relevant to `type` are meaningful:
///   kSetTime: time
///   kAddNode: uid, class_name, row, time
///   kAddEdge: uid, class_name, row, source, target, time
///   kUpdate : uid, changes, time
///   kRemove : uid, time    (cascaded edge deletions are NOT logged; replay
///                           of the node removal reproduces them)
struct WalRecord {
  WalRecordType type = WalRecordType::kSetTime;
  Timestamp time = 0;
  Uid uid = 0;
  std::string class_name;
  std::vector<Value> row;  // layout-aligned with the class's fields()
  Uid source = 0;
  Uid target = 0;
  std::vector<std::pair<int, Value>> changes;  // (field index, new value)
};

/// Appends the canonical binary payload (excluding framing).
void EncodeWalRecord(const WalRecord& rec, std::string* out);

/// Inverse of EncodeWalRecord. Fails with Corruption on truncation, unknown
/// record types, or trailing bytes.
Result<WalRecord> DecodeWalRecord(std::string_view payload);

/// 64-bit FNV-1a of the schema's DSL rendering. Stored in every segment
/// header and checkpoint so recovery refuses to replay a log against a
/// database opened with a different schema.
uint64_t SchemaFingerprint(const schema::Schema& schema);

}  // namespace nepal::persist

#endif  // NEPAL_PERSIST_WAL_FORMAT_H_
