// Textual schema definitions: the Nepal schema DSL.
//
// The DSL is a compact rendering of the TOSCA structure the paper derives
// its schema language from (data_types, node_types, capability_types):
//
//   data_type routingTableEntry {
//     address: ip;
//     mask: int;
//     interface: string;
//   }
//   node Container : Node { status: string; }
//   node VM : Container {}
//   node Host : Node { serial: string unique; }
//   edge Vertical : Edge {}
//   edge HostedOn : Vertical {}
//   allow HostedOn (VM -> Host);
//
// `# ...` and `// ...` comments run to end of line. Classes may be declared
// in any order (forward references to parents are fine).

#ifndef NEPAL_SCHEMA_DSL_PARSER_H_
#define NEPAL_SCHEMA_DSL_PARSER_H_

#include <string>

#include "common/status.h"
#include "schema/schema.h"

namespace nepal::schema {

/// Parses DSL text into a validated Schema. Parse errors carry line numbers.
Result<SchemaPtr> ParseSchemaDsl(const std::string& text);

}  // namespace nepal::schema

#endif  // NEPAL_SCHEMA_DSL_PARSER_H_
