// ClassDef: one node or edge class in Nepal's single-rooted hierarchy.
//
// All classes descend from the built-in roots `Node` or `Edge` (which both
// carry a built-in optional `name: string` field). A subclass inherits every
// parent field and may append its own. A record of class C is stored as a
// flattened Value vector laid out parent-fields-first, so a scan "as class P"
// can read a subclass row through P's prefix of the layout — the same trick
// Postgres INHERITS uses.

#ifndef NEPAL_SCHEMA_CLASS_DEF_H_
#define NEPAL_SCHEMA_CLASS_DEF_H_

#include <string>
#include <vector>

#include "schema/types.h"

namespace nepal::schema {

enum class ClassKind { kNode, kEdge };

class Schema;

class ClassDef {
 public:
  const std::string& name() const { return name_; }
  ClassKind kind() const { return kind_; }
  bool is_node() const { return kind_ == ClassKind::kNode; }
  bool is_edge() const { return kind_ == ClassKind::kEdge; }

  /// Parent class; nullptr only for the Node and Edge roots.
  const ClassDef* parent() const { return parent_; }
  bool is_root() const { return parent_ == nullptr; }

  /// Direct subclasses.
  const std::vector<const ClassDef*>& children() const { return children_; }

  /// Full inheritance path, e.g. "Node:Container:VM:VMWare". This string is
  /// what the graphstore backend uses as the element label (prefix matching
  /// implements query-time generalization, as in the paper's Gremlin
  /// implementation).
  const std::string& label_path() const { return label_path_; }

  /// All fields, parent chain first. Record layouts align with this order.
  const std::vector<FieldDef>& fields() const { return fields_; }
  /// Number of fields declared by ancestors (== offset of own fields).
  size_t inherited_field_count() const { return inherited_field_count_; }

  /// Index into fields() or -1.
  int FieldIndex(const std::string& field_name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == field_name) return static_cast<int>(i);
    }
    return -1;
  }

  /// True if this class equals `ancestor` or transitively derives from it.
  bool IsSubclassOf(const ClassDef* ancestor) const {
    for (const ClassDef* c = this; c != nullptr; c = c->parent_) {
      if (c == ancestor) return true;
    }
    return false;
  }

  /// Depth in the hierarchy; roots have depth 0.
  int depth() const { return depth_; }

  /// Pre-order interval [subtree_begin, subtree_end) over the finalized
  /// hierarchy; C IsSubclassOf A  <=>  A.subtree contains C.order. Enables
  /// O(1) subtree tests during query execution.
  int order() const { return order_; }
  int subtree_end() const { return subtree_end_; }
  bool SubtreeContains(const ClassDef* c) const {
    return c->order_ >= order_ && c->order_ < subtree_end_;
  }

 private:
  friend class Schema;
  friend class SchemaBuilder;

  std::string name_;
  ClassKind kind_ = ClassKind::kNode;
  const ClassDef* parent_ = nullptr;
  std::vector<const ClassDef*> children_;
  std::string label_path_;
  std::vector<FieldDef> fields_;
  size_t inherited_field_count_ = 0;
  int depth_ = 0;
  int order_ = 0;
  int subtree_end_ = 0;
};

/// An allowed-edge rule: edges of class `edge_class` (or a subclass) may run
/// from nodes of `source_class` (or subclass) to nodes of `target_class`
/// (or subclass). Figure 3's "solid lines".
struct EdgeRule {
  const ClassDef* edge_class;
  const ClassDef* source_class;
  const ClassDef* target_class;
};

}  // namespace nepal::schema

#endif  // NEPAL_SCHEMA_CLASS_DEF_H_
