// Schema: the immutable, validated collection of classes, data types and
// allowed-edge rules that a Nepal database instance is opened against.
//
// Build one with SchemaBuilder (programmatic) or ParseSchemaDsl (textual,
// TOSCA-flavoured). Schemas are shared (shared_ptr) between the database,
// the query translator, and result sets.

#ifndef NEPAL_SCHEMA_SCHEMA_H_
#define NEPAL_SCHEMA_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/class_def.h"
#include "schema/types.h"

namespace nepal::schema {

class Schema {
 public:
  ~Schema();
  Schema(const Schema&) = delete;
  Schema& operator=(const Schema&) = delete;

  /// Built-in roots.
  const ClassDef* node_root() const { return node_root_; }
  const ClassDef* edge_root() const { return edge_root_; }

  /// Looks a class up by short name ("VM") or by label-path suffix
  /// ("Vertical:HostedOn" resolves to the class named HostedOn if its path
  /// ends that way). Returns nullptr if unknown.
  const ClassDef* FindClass(const std::string& name) const;

  /// As FindClass but returns a Status error naming the class.
  Result<const ClassDef*> GetClass(const std::string& name) const;

  const DataTypeDef* FindDataType(const std::string& name) const;

  /// All classes in hierarchy pre-order (roots first).
  const std::vector<const ClassDef*>& classes() const { return class_order_; }

  const std::vector<EdgeRule>& edge_rules() const { return edge_rules_; }

  /// True if an edge of class `e` may connect a `src`-class node to a
  /// `tgt`-class node, consulting rules declared on `e` or any ancestor.
  bool EdgeAllowed(const ClassDef* e, const ClassDef* src,
                   const ClassDef* tgt) const;

  /// Least common ancestor of two classes of the same kind; used to type
  /// source(P)/target(P) expressions. Never null for same-kind classes
  /// (the roots are common ancestors).
  const ClassDef* LeastCommonAncestor(const ClassDef* a,
                                      const ClassDef* b) const;

  /// Renders the schema back to the Nepal schema DSL (round-trippable).
  std::string ToDsl() const;

 private:
  friend class SchemaBuilder;
  Schema() = default;

  std::vector<std::unique_ptr<ClassDef>> owned_classes_;
  std::vector<const ClassDef*> class_order_;  // pre-order
  std::map<std::string, const ClassDef*> by_name_;
  std::map<std::string, DataTypeDef> data_types_;
  std::vector<EdgeRule> edge_rules_;
  const ClassDef* node_root_ = nullptr;
  const ClassDef* edge_root_ = nullptr;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// Fluent builder. Typical use:
///
///   SchemaBuilder b;
///   b.NodeClass("Container", "Node").Field("status", ValueKind::kString);
///   b.NodeClass("VM", "Container");
///   b.EdgeClass("HostedOn", "Edge");
///   b.AllowEdge("HostedOn", "VM", "Host");
///   NEPAL_ASSIGN_OR_RETURN(SchemaPtr s, b.Build());
class SchemaBuilder {
 public:
  class ClassSpec {
   public:
    ClassSpec& Field(std::string name, ValueKind kind) {
      return Field(std::move(name), TypeRef::Primitive(kind));
    }
    ClassSpec& Field(std::string name, TypeRef type) {
      fields.push_back(FieldDef{std::move(name), std::move(type),
                                /*unique=*/false, /*required=*/false});
      return *this;
    }
    ClassSpec& Field(std::string name, TypeRef type, bool unique,
                     bool required) {
      fields.push_back(
          FieldDef{std::move(name), std::move(type), unique, required});
      return *this;
    }
    ClassSpec& UniqueField(std::string name, ValueKind kind) {
      fields.push_back(FieldDef{std::move(name), TypeRef::Primitive(kind),
                                /*unique=*/true, /*required=*/true});
      return *this;
    }

   private:
    friend class SchemaBuilder;
    std::string name;
    std::string parent;
    ClassKind kind;
    std::vector<FieldDef> fields;
  };

  class DataTypeSpec {
   public:
    DataTypeSpec& Field(std::string name, ValueKind kind) {
      return Field(std::move(name), TypeRef::Primitive(kind));
    }
    DataTypeSpec& Field(std::string name, TypeRef type) {
      def.fields.push_back(
          FieldDef{std::move(name), std::move(type), false, false});
      return *this;
    }

   private:
    friend class SchemaBuilder;
    DataTypeDef def;
  };

  /// Declares a node class deriving from `parent` ("Node" for the root).
  ClassSpec& NodeClass(std::string name, std::string parent = "Node");
  /// Declares an edge class deriving from `parent` ("Edge" for the root).
  ClassSpec& EdgeClass(std::string name, std::string parent = "Edge");
  DataTypeSpec& DataType(std::string name);
  /// Permits edge class `edge` from node class `src` to node class `tgt`.
  SchemaBuilder& AllowEdge(std::string edge, std::string src, std::string tgt);

  /// Validates and freezes the schema. Errors include: duplicate names,
  /// unknown parents, inheritance cycles, node/edge kind mismatches, field
  /// shadowing, unknown data types, cyclic data-type composition, and rules
  /// referencing unknown classes.
  Result<SchemaPtr> Build() const;

 private:
  struct RuleSpec {
    std::string edge, src, tgt;
  };
  std::vector<ClassSpec> class_specs_;
  std::vector<DataTypeSpec> data_type_specs_;
  std::vector<RuleSpec> rule_specs_;
};

}  // namespace nepal::schema

#endif  // NEPAL_SCHEMA_SCHEMA_H_
