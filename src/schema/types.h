// Field and data-type definitions for Nepal's strongly-typed schema.
//
// The schema system mirrors the TOSCA structure the paper builds on:
//  - data_types  : composite record types (composition must form a DAG),
//  - containers  : list, set, map (string-keyed),
//  - node/edge classes : single-rooted inheritance hierarchies (class_def.h).

#ifndef NEPAL_SCHEMA_TYPES_H_
#define NEPAL_SCHEMA_TYPES_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace nepal::schema {

enum class ContainerKind { kNone = 0, kList, kSet, kMap };

/// Reference to a field type: either a primitive ValueKind or a named
/// composite data type, optionally wrapped in a container.
struct TypeRef {
  ContainerKind container = ContainerKind::kNone;
  ValueKind primitive = ValueKind::kNull;  // used when data_type is empty
  std::string data_type;                   // composite type name, or ""

  bool is_composite() const { return !data_type.empty(); }

  static TypeRef Primitive(ValueKind kind) {
    TypeRef t;
    t.primitive = kind;
    return t;
  }
  static TypeRef Composite(std::string name) {
    TypeRef t;
    t.data_type = std::move(name);
    return t;
  }
  TypeRef InList() const {
    TypeRef t = *this;
    t.container = ContainerKind::kList;
    return t;
  }
  TypeRef InSet() const {
    TypeRef t = *this;
    t.container = ContainerKind::kSet;
    return t;
  }
  TypeRef InMap() const {
    TypeRef t = *this;
    t.container = ContainerKind::kMap;
    return t;
  }

  bool operator==(const TypeRef&) const = default;

  /// "list<routingTableEntry>", "string", ...
  std::string ToString() const;
};

struct FieldDef {
  std::string name;
  TypeRef type;
  bool unique = false;    // uniqueness enforced over the declaring subtree
  bool required = false;  // must be non-null at insert time
};

/// A composite data type: a named collection of typed fields. Values of a
/// composite type are represented at runtime as kMap Values whose keys are
/// the field names.
struct DataTypeDef {
  std::string name;
  std::vector<FieldDef> fields;
};

}  // namespace nepal::schema

#endif  // NEPAL_SCHEMA_TYPES_H_
