#include "schema/record.h"

namespace nepal::schema {

namespace {

bool PrimitiveMatches(ValueKind declared, ValueKind actual) {
  if (declared == actual) return true;
  // Ints are acceptable where doubles are declared.
  if (declared == ValueKind::kDouble && actual == ValueKind::kInt) return true;
  return false;
}

}  // namespace

Status CheckValueType(const Schema& schema, const TypeRef& type,
                      const Value& value, const std::string& context) {
  if (value.is_null()) return Status::OK();  // nullability checked by caller

  if (type.container != ContainerKind::kNone) {
    TypeRef element = type;
    element.container = ContainerKind::kNone;
    switch (type.container) {
      case ContainerKind::kList:
        if (value.kind() != ValueKind::kList) {
          return Status::SchemaViolation(context + ": expected list, got " +
                                         ValueKindToString(value.kind()));
        }
        break;
      case ContainerKind::kSet:
        if (value.kind() != ValueKind::kSet) {
          return Status::SchemaViolation(context + ": expected set, got " +
                                         ValueKindToString(value.kind()));
        }
        break;
      case ContainerKind::kMap:
        if (value.kind() != ValueKind::kMap) {
          return Status::SchemaViolation(context + ": expected map, got " +
                                         ValueKindToString(value.kind()));
        }
        for (const auto& [key, elem] : value.AsMap()) {
          NEPAL_RETURN_NOT_OK(CheckValueType(schema, element, elem,
                                             context + "[" + key + "]"));
        }
        return Status::OK();
      case ContainerKind::kNone:
        break;
    }
    size_t i = 0;
    for (const Value& elem : value.AsList()) {
      NEPAL_RETURN_NOT_OK(CheckValueType(
          schema, element, elem, context + "[" + std::to_string(i++) + "]"));
    }
    return Status::OK();
  }

  if (type.is_composite()) {
    const DataTypeDef* dt = schema.FindDataType(type.data_type);
    if (dt == nullptr) {
      return Status::Internal(context + ": unknown data type '" +
                              type.data_type + "'");
    }
    if (value.kind() != ValueKind::kMap) {
      return Status::SchemaViolation(context + ": expected " + dt->name +
                                     " (a map value), got " +
                                     ValueKindToString(value.kind()));
    }
    for (const auto& [key, elem] : value.AsMap()) {
      const FieldDef* field = nullptr;
      for (const FieldDef& f : dt->fields) {
        if (f.name == key) {
          field = &f;
          break;
        }
      }
      if (field == nullptr) {
        return Status::SchemaViolation(context + ": data type " + dt->name +
                                       " has no field '" + key + "'");
      }
      NEPAL_RETURN_NOT_OK(
          CheckValueType(schema, field->type, elem, context + "." + key));
    }
    return Status::OK();
  }

  if (!PrimitiveMatches(type.primitive, value.kind())) {
    return Status::SchemaViolation(
        context + ": expected " + std::string(ValueKindToString(type.primitive)) +
        ", got " + ValueKindToString(value.kind()));
  }
  return Status::OK();
}

Result<std::vector<Value>> ValidateRecord(const Schema& schema,
                                          const ClassDef& cls,
                                          const FieldValues& values) {
  std::vector<Value> row(cls.fields().size());
  for (const auto& [name, value] : values) {
    int idx = cls.FieldIndex(name);
    if (idx < 0) {
      return Status::SchemaViolation("class " + cls.name() +
                                     " has no field '" + name + "'");
    }
    NEPAL_RETURN_NOT_OK(CheckValueType(schema, cls.fields()[idx].type, value,
                                       cls.name() + "." + name));
    row[idx] = value;
  }
  for (size_t i = 0; i < cls.fields().size(); ++i) {
    const FieldDef& f = cls.fields()[i];
    if (f.required && row[i].is_null()) {
      return Status::SchemaViolation("class " + cls.name() +
                                     ": required field '" + f.name +
                                     "' is missing");
    }
  }
  return row;
}

Result<std::vector<std::pair<int, Value>>> ValidateUpdate(
    const Schema& schema, const ClassDef& cls, const FieldValues& values) {
  std::vector<std::pair<int, Value>> out;
  out.reserve(values.size());
  for (const auto& [name, value] : values) {
    int idx = cls.FieldIndex(name);
    if (idx < 0) {
      return Status::SchemaViolation("class " + cls.name() +
                                     " has no field '" + name + "'");
    }
    NEPAL_RETURN_NOT_OK(CheckValueType(schema, cls.fields()[idx].type, value,
                                       cls.name() + "." + name));
    if (cls.fields()[idx].required && value.is_null()) {
      return Status::SchemaViolation("class " + cls.name() + ": field '" +
                                     name + "' is required, cannot be nulled");
    }
    out.emplace_back(idx, value);
  }
  return out;
}

}  // namespace nepal::schema
