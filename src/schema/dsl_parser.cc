#include "schema/dsl_parser.h"

#include <cctype>

namespace nepal::schema {

namespace {

struct Token {
  enum Kind { kIdent, kPunct, kEnd } kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<Token> Next() {
    SkipSpaceAndComments();
    if (pos_ >= text_.size()) return Token{Token::kEnd, "", line_};
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return Token{Token::kIdent, text_.substr(start, pos_ - start), line_};
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      return Token{Token::kPunct, "->", line_};
    }
    if (std::string("{}();:<>,").find(c) != std::string::npos) {
      ++pos_;
      return Token{Token::kPunct, std::string(1, c), line_};
    }
    return Status::ParseError("schema DSL: unexpected character '" +
                              std::string(1, c) + "' at line " +
                              std::to_string(line_));
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' ||
                 (c == '/' && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  Result<SchemaPtr> Parse() {
    NEPAL_RETURN_NOT_OK(Advance());
    while (cur_.kind != Token::kEnd) {
      if (cur_.kind != Token::kIdent) {
        return Err("expected a declaration keyword");
      }
      if (cur_.text == "data_type") {
        NEPAL_RETURN_NOT_OK(ParseDataType());
      } else if (cur_.text == "node" || cur_.text == "edge") {
        NEPAL_RETURN_NOT_OK(ParseClass(cur_.text == "node"));
      } else if (cur_.text == "allow") {
        NEPAL_RETURN_NOT_OK(ParseAllow());
      } else {
        return Err("unknown declaration '" + cur_.text +
                   "' (expected data_type, node, edge, or allow)");
      }
    }
    return builder_.Build();
  }

 private:
  Status Advance() {
    NEPAL_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  Status Err(const std::string& msg) {
    return Status::ParseError("schema DSL line " + std::to_string(cur_.line) +
                              ": " + msg);
  }

  Status ExpectPunct(const std::string& p) {
    if (cur_.kind != Token::kPunct || cur_.text != p) {
      return Err("expected '" + p + "', got '" + cur_.text + "'");
    }
    return Advance();
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (cur_.kind != Token::kIdent) {
      return Status::ParseError("schema DSL line " +
                                std::to_string(cur_.line) + ": expected " +
                                what + ", got '" + cur_.text + "'");
    }
    std::string name = cur_.text;
    NEPAL_RETURN_NOT_OK(Advance());
    return name;
  }

  Result<TypeRef> ParseType() {
    NEPAL_ASSIGN_OR_RETURN(std::string base, ExpectIdent("a type name"));
    ContainerKind container = ContainerKind::kNone;
    if (base == "list" || base == "set" || base == "map") {
      container = base == "list"   ? ContainerKind::kList
                  : base == "set"  ? ContainerKind::kSet
                                   : ContainerKind::kMap;
      NEPAL_RETURN_NOT_OK(ExpectPunct("<"));
      NEPAL_ASSIGN_OR_RETURN(base, ExpectIdent("an element type name"));
      NEPAL_RETURN_NOT_OK(ExpectPunct(">"));
    }
    TypeRef type;
    type.container = container;
    if (base == "int") {
      type.primitive = ValueKind::kInt;
    } else if (base == "double") {
      type.primitive = ValueKind::kDouble;
    } else if (base == "bool") {
      type.primitive = ValueKind::kBool;
    } else if (base == "string") {
      type.primitive = ValueKind::kString;
    } else if (base == "ip") {
      type.primitive = ValueKind::kIp;
    } else {
      type.data_type = base;  // composite; resolved at Build()
    }
    return type;
  }

  // Parses `name: type [unique|required]* ;` entries until `}`.
  template <typename Spec>
  Status ParseFieldBlock(Spec& spec) {
    NEPAL_RETURN_NOT_OK(ExpectPunct("{"));
    while (!(cur_.kind == Token::kPunct && cur_.text == "}")) {
      NEPAL_ASSIGN_OR_RETURN(std::string fname, ExpectIdent("a field name"));
      NEPAL_RETURN_NOT_OK(ExpectPunct(":"));
      NEPAL_ASSIGN_OR_RETURN(TypeRef type, ParseType());
      bool unique = false, required = false;
      while (cur_.kind == Token::kIdent) {
        if (cur_.text == "unique") {
          unique = true;
        } else if (cur_.text == "required") {
          required = true;
        } else {
          return Err("unknown field modifier '" + cur_.text + "'");
        }
        NEPAL_RETURN_NOT_OK(Advance());
      }
      NEPAL_RETURN_NOT_OK(ExpectPunct(";"));
      AddField(spec, std::move(fname), std::move(type), unique, required);
    }
    return Advance();  // consume '}'
  }

  static void AddField(SchemaBuilder::ClassSpec& spec, std::string name,
                       TypeRef type, bool unique, bool required) {
    spec.Field(std::move(name), std::move(type), unique, unique || required);
  }
  static void AddField(SchemaBuilder::DataTypeSpec& spec, std::string name,
                       TypeRef type, bool /*unique*/, bool /*required*/) {
    spec.Field(std::move(name), std::move(type));
  }

  Status ParseDataType() {
    NEPAL_RETURN_NOT_OK(Advance());  // consume 'data_type'
    NEPAL_ASSIGN_OR_RETURN(std::string name, ExpectIdent("a data type name"));
    SchemaBuilder::DataTypeSpec& spec = builder_.DataType(std::move(name));
    return ParseFieldBlock(spec);
  }

  Status ParseClass(bool is_node) {
    NEPAL_RETURN_NOT_OK(Advance());  // consume 'node'/'edge'
    NEPAL_ASSIGN_OR_RETURN(std::string name, ExpectIdent("a class name"));
    std::string parent = is_node ? "Node" : "Edge";
    if (cur_.kind == Token::kPunct && cur_.text == ":") {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_ASSIGN_OR_RETURN(parent, ExpectIdent("a parent class name"));
    }
    SchemaBuilder::ClassSpec& spec =
        is_node ? builder_.NodeClass(std::move(name), std::move(parent))
                : builder_.EdgeClass(std::move(name), std::move(parent));
    return ParseFieldBlock(spec);
  }

  Status ParseAllow() {
    NEPAL_RETURN_NOT_OK(Advance());  // consume 'allow'
    NEPAL_ASSIGN_OR_RETURN(std::string edge, ExpectIdent("an edge class"));
    NEPAL_RETURN_NOT_OK(ExpectPunct("("));
    NEPAL_ASSIGN_OR_RETURN(std::string src, ExpectIdent("a source class"));
    NEPAL_RETURN_NOT_OK(ExpectPunct("->"));
    NEPAL_ASSIGN_OR_RETURN(std::string tgt, ExpectIdent("a target class"));
    NEPAL_RETURN_NOT_OK(ExpectPunct(")"));
    NEPAL_RETURN_NOT_OK(ExpectPunct(";"));
    builder_.AllowEdge(std::move(edge), std::move(src), std::move(tgt));
    return Status::OK();
  }

  Lexer lexer_;
  Token cur_{Token::kEnd, "", 0};
  SchemaBuilder builder_;
};

}  // namespace

Result<SchemaPtr> ParseSchemaDsl(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace nepal::schema
