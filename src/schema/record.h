// Record validation: the "strong typing that keeps garbage out".
//
// Insert/update payloads arrive as (field name, Value) pairs; ValidateRecord
// resolves them against a class's flattened layout and type-checks every
// cell, rejecting unknown fields, type mismatches, and missing required
// fields — by contrast with property-graph stores, which (as the paper puts
// it) "will let you load garbage without any warnings".

#ifndef NEPAL_SCHEMA_RECORD_H_
#define NEPAL_SCHEMA_RECORD_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "schema/schema.h"

namespace nepal::schema {

/// Insert/update payload: field name -> value.
using FieldValues = std::vector<std::pair<std::string, Value>>;

/// Checks that `value` is a valid instance of `type`. Composite types are
/// kMap values keyed by field name (missing keys read as null; unknown keys
/// are rejected). Containers check every element.
Status CheckValueType(const Schema& schema, const TypeRef& type,
                      const Value& value, const std::string& context);

/// Validates `values` against `cls` and returns the flattened row aligned
/// with cls.fields(). Fields not mentioned become null (unless required).
Result<std::vector<Value>> ValidateRecord(const Schema& schema,
                                          const ClassDef& cls,
                                          const FieldValues& values);

/// Validates a partial update: every named field must exist on `cls` and
/// type-check; returns (field index, value) pairs.
Result<std::vector<std::pair<int, Value>>> ValidateUpdate(
    const Schema& schema, const ClassDef& cls, const FieldValues& values);

}  // namespace nepal::schema

#endif  // NEPAL_SCHEMA_RECORD_H_
