#include "schema/schema.h"

#include <algorithm>
#include <functional>
#include <set>

namespace nepal::schema {

std::string TypeRef::ToString() const {
  std::string inner = is_composite() ? data_type : ValueKindToString(primitive);
  switch (container) {
    case ContainerKind::kNone:
      return inner;
    case ContainerKind::kList:
      return "list<" + inner + ">";
    case ContainerKind::kSet:
      return "set<" + inner + ">";
    case ContainerKind::kMap:
      return "map<" + inner + ">";
  }
  return inner;
}

Schema::~Schema() = default;

const ClassDef* Schema::FindClass(const std::string& name) const {
  // Qualified names resolve via their last segment, then verify the suffix.
  size_t colon = name.rfind(':');
  const std::string& short_name =
      colon == std::string::npos ? name : name.substr(colon + 1);
  auto it = by_name_.find(short_name);
  if (it == by_name_.end()) return nullptr;
  if (colon != std::string::npos) {
    const std::string& path = it->second->label_path();
    if (path.size() < name.size() ||
        path.compare(path.size() - name.size(), name.size(), name) != 0) {
      return nullptr;
    }
  }
  return it->second;
}

Result<const ClassDef*> Schema::GetClass(const std::string& name) const {
  const ClassDef* cls = FindClass(name);
  if (cls == nullptr) {
    return Status::NotFound("no node or edge class named '" + name +
                            "' in the schema");
  }
  return cls;
}

const DataTypeDef* Schema::FindDataType(const std::string& name) const {
  auto it = data_types_.find(name);
  return it == data_types_.end() ? nullptr : &it->second;
}

bool Schema::EdgeAllowed(const ClassDef* e, const ClassDef* src,
                         const ClassDef* tgt) const {
  for (const EdgeRule& rule : edge_rules_) {
    if (e->IsSubclassOf(rule.edge_class) &&
        src->IsSubclassOf(rule.source_class) &&
        tgt->IsSubclassOf(rule.target_class)) {
      return true;
    }
  }
  return false;
}

const ClassDef* Schema::LeastCommonAncestor(const ClassDef* a,
                                            const ClassDef* b) const {
  while (a->depth() > b->depth()) a = a->parent();
  while (b->depth() > a->depth()) b = b->parent();
  while (a != b) {
    a = a->parent();
    b = b->parent();
  }
  return a;
}

std::string Schema::ToDsl() const {
  std::string out;
  for (const auto& [name, dt] : data_types_) {
    out += "data_type " + name + " {\n";
    for (const FieldDef& f : dt.fields) {
      out += "  " + f.name + ": " + f.type.ToString() + ";\n";
    }
    out += "}\n";
  }
  for (const ClassDef* cls : class_order_) {
    if (cls->is_root()) continue;
    out += cls->is_node() ? "node " : "edge ";
    out += cls->name() + " : " + cls->parent()->name() + " {";
    if (cls->fields().size() > cls->inherited_field_count()) {
      out += "\n";
      for (size_t i = cls->inherited_field_count(); i < cls->fields().size();
           ++i) {
        const FieldDef& f = cls->fields()[i];
        out += "  " + f.name + ": " + f.type.ToString();
        if (f.unique) out += " unique";
        if (f.required && !f.unique) out += " required";
        out += ";\n";
      }
    }
    out += "}\n";
  }
  for (const EdgeRule& rule : edge_rules_) {
    out += "allow " + rule.edge_class->name() + " (" +
           rule.source_class->name() + " -> " + rule.target_class->name() +
           ");\n";
  }
  return out;
}

SchemaBuilder::ClassSpec& SchemaBuilder::NodeClass(std::string name,
                                                   std::string parent) {
  ClassSpec spec;
  spec.name = std::move(name);
  spec.parent = std::move(parent);
  spec.kind = ClassKind::kNode;
  class_specs_.push_back(std::move(spec));
  return class_specs_.back();
}

SchemaBuilder::ClassSpec& SchemaBuilder::EdgeClass(std::string name,
                                                   std::string parent) {
  ClassSpec spec;
  spec.name = std::move(name);
  spec.parent = std::move(parent);
  spec.kind = ClassKind::kEdge;
  class_specs_.push_back(std::move(spec));
  return class_specs_.back();
}

SchemaBuilder::DataTypeSpec& SchemaBuilder::DataType(std::string name) {
  DataTypeSpec spec;
  spec.def.name = std::move(name);
  data_type_specs_.push_back(std::move(spec));
  return data_type_specs_.back();
}

SchemaBuilder& SchemaBuilder::AllowEdge(std::string edge, std::string src,
                                        std::string tgt) {
  rule_specs_.push_back(
      RuleSpec{std::move(edge), std::move(src), std::move(tgt)});
  return *this;
}

namespace {

// Checks that every TypeRef resolves; composite refs must name a data type.
Status CheckTypeRef(const Schema& schema, const std::string& context,
                    const TypeRef& type) {
  if (type.is_composite()) {
    if (schema.FindDataType(type.data_type) == nullptr) {
      return Status::SchemaViolation(context + ": unknown data type '" +
                                     type.data_type + "'");
    }
  } else if (type.primitive == ValueKind::kNull ||
             type.primitive == ValueKind::kList ||
             type.primitive == ValueKind::kSet ||
             type.primitive == ValueKind::kMap) {
    return Status::SchemaViolation(context +
                                   ": field type must be a primitive or a "
                                   "named data type");
  }
  return Status::OK();
}

}  // namespace

Result<SchemaPtr> SchemaBuilder::Build() const {
  auto schema = std::shared_ptr<Schema>(new Schema());

  // Built-in roots, each with the optional `name` field.
  auto make_root = [&](const std::string& name, ClassKind kind) {
    auto cls = std::make_unique<ClassDef>();
    cls->name_ = name;
    cls->kind_ = kind;
    cls->label_path_ = name;
    cls->fields_.push_back(
        FieldDef{"name", TypeRef::Primitive(ValueKind::kString), false, false});
    const ClassDef* ptr = cls.get();
    schema->by_name_[name] = ptr;
    schema->owned_classes_.push_back(std::move(cls));
    return ptr;
  };
  schema->node_root_ = make_root("Node", ClassKind::kNode);
  schema->edge_root_ = make_root("Edge", ClassKind::kEdge);

  // Data types first (classes may reference them).
  for (const DataTypeSpec& spec : data_type_specs_) {
    if (schema->data_types_.count(spec.def.name) ||
        spec.def.name == "Node" || spec.def.name == "Edge") {
      return Status::SchemaViolation("duplicate data type '" + spec.def.name +
                                     "'");
    }
    schema->data_types_[spec.def.name] = spec.def;
  }
  // Composition DAG check (DFS for cycles).
  {
    std::set<std::string> visiting, done;
    std::function<Status(const std::string&)> visit =
        [&](const std::string& name) -> Status {
      if (done.count(name)) return Status::OK();
      if (visiting.count(name)) {
        return Status::SchemaViolation("cyclic data type composition through '" +
                                       name + "'");
      }
      visiting.insert(name);
      const DataTypeDef* dt = schema->FindDataType(name);
      for (const FieldDef& f : dt->fields) {
        if (f.type.is_composite()) {
          if (schema->FindDataType(f.type.data_type) == nullptr) {
            return Status::SchemaViolation("data type '" + name +
                                           "' references unknown type '" +
                                           f.type.data_type + "'");
          }
          NEPAL_RETURN_NOT_OK(visit(f.type.data_type));
        }
      }
      visiting.erase(name);
      done.insert(name);
      return Status::OK();
    };
    for (const auto& [name, dt] : schema->data_types_) {
      NEPAL_RETURN_NOT_OK(visit(name));
    }
  }

  // Classes: process specs repeatedly until all parents resolve, so the
  // builder does not require declaration order to be topological.
  std::vector<const ClassSpec*> pending;
  for (const ClassSpec& spec : class_specs_) pending.push_back(&spec);
  while (!pending.empty()) {
    bool progress = false;
    std::vector<const ClassSpec*> next;
    for (const ClassSpec* spec : pending) {
      auto parent_it = schema->by_name_.find(spec->parent);
      if (parent_it == schema->by_name_.end()) {
        next.push_back(spec);
        continue;
      }
      progress = true;
      const ClassDef* parent = parent_it->second;
      if (parent->kind() != spec->kind) {
        return Status::SchemaViolation(
            "class '" + spec->name + "' is a " +
            (spec->kind == ClassKind::kNode ? std::string("node")
                                            : std::string("edge")) +
            " but parent '" + spec->parent + "' is not");
      }
      if (schema->by_name_.count(spec->name)) {
        return Status::SchemaViolation("duplicate class name '" + spec->name +
                                       "'");
      }
      auto cls = std::make_unique<ClassDef>();
      cls->name_ = spec->name;
      cls->kind_ = spec->kind;
      cls->parent_ = parent;
      cls->depth_ = parent->depth() + 1;
      cls->label_path_ = parent->label_path() + ":" + spec->name;
      cls->fields_ = parent->fields();
      cls->inherited_field_count_ = parent->fields().size();
      for (const FieldDef& f : spec->fields) {
        if (cls->FieldIndex(f.name) >= 0) {
          return Status::SchemaViolation("class '" + spec->name +
                                         "' re-declares inherited field '" +
                                         f.name + "'");
        }
        NEPAL_RETURN_NOT_OK(
            CheckTypeRef(*schema, "class '" + spec->name + "'", f.type));
        cls->fields_.push_back(f);
      }
      const_cast<ClassDef*>(parent)->children_.push_back(cls.get());
      schema->by_name_[spec->name] = cls.get();
      schema->owned_classes_.push_back(std::move(cls));
    }
    if (!progress) {
      std::string names;
      for (const ClassSpec* spec : next) {
        if (!names.empty()) names += ", ";
        names += spec->name + " : " + spec->parent;
      }
      return Status::SchemaViolation(
          "unresolvable parents (unknown class or inheritance cycle): " +
          names);
    }
    pending = std::move(next);
  }

  // Pre-order numbering for O(1) subtree tests.
  {
    int counter = 0;
    std::function<void(ClassDef*)> number = [&](ClassDef* cls) {
      cls->order_ = counter++;
      schema->class_order_.push_back(cls);
      for (const ClassDef* child : cls->children_) {
        number(const_cast<ClassDef*>(child));
      }
      cls->subtree_end_ = counter;
    };
    number(const_cast<ClassDef*>(schema->node_root_));
    number(const_cast<ClassDef*>(schema->edge_root_));
  }

  // Edge rules.
  for (const RuleSpec& rule : rule_specs_) {
    const ClassDef* e = schema->FindClass(rule.edge);
    const ClassDef* s = schema->FindClass(rule.src);
    const ClassDef* t = schema->FindClass(rule.tgt);
    if (e == nullptr || !e->is_edge()) {
      return Status::SchemaViolation("allow rule: unknown edge class '" +
                                     rule.edge + "'");
    }
    if (s == nullptr || !s->is_node() || t == nullptr || !t->is_node()) {
      return Status::SchemaViolation("allow rule for '" + rule.edge +
                                     "': endpoints must be node classes");
    }
    schema->edge_rules_.push_back(EdgeRule{e, s, t});
  }

  return SchemaPtr(schema);
}

}  // namespace nepal::schema
