#include "common/value.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "common/binary.h"

namespace nepal {

const char* ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kIp:
      return "ip";
    case ValueKind::kList:
      return "list";
    case ValueKind::kSet:
      return "set";
    case ValueKind::kMap:
      return "map";
  }
  return "unknown";
}

Value Value::List(ValueList elems) {
  Value v;
  v.rep_ = ContainerRep{ValueKind::kList,
                        std::make_shared<const ValueList>(std::move(elems))};
  return v;
}

Value Value::Set(ValueList elems) {
  std::sort(elems.begin(), elems.end());
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  Value v;
  v.rep_ = ContainerRep{ValueKind::kSet,
                        std::make_shared<const ValueList>(std::move(elems))};
  return v;
}

Value Value::Map(ValueMap entries) {
  Value v;
  v.rep_ = MapRep{std::make_shared<const ValueMap>(std::move(entries))};
  return v;
}

Result<Value> Value::ParseIp(const std::string& text) {
  unsigned a, b, c, d;
  char extra;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) !=
          4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    return Status::ParseError("bad IPv4 literal: '" + text + "'");
  }
  return Value::Ip((a << 24) | (b << 16) | (c << 8) | d);
}

ValueKind Value::kind() const {
  switch (rep_.index()) {
    case 0:
      return ValueKind::kNull;
    case 1:
      return ValueKind::kBool;
    case 2:
      return ValueKind::kInt;
    case 3:
      return ValueKind::kDouble;
    case 4:
      return ValueKind::kString;
    case 5:
      return ValueKind::kIp;
    case 6:
      return std::get<ContainerRep>(rep_).kind;
    case 7:
      return ValueKind::kMap;
  }
  return ValueKind::kNull;
}

const ValueList& Value::AsList() const {
  return *std::get<ContainerRep>(rep_).elems;
}

const ValueMap& Value::AsMap() const {
  return *std::get<MapRep>(rep_).entries;
}

namespace {

int Cmp3(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
int Cmp3(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
int Cmp3(uint32_t a, uint32_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return 1;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 2;  // numerics compare across kinds
    case ValueKind::kString:
      return 3;
    case ValueKind::kIp:
      return 4;
    case ValueKind::kList:
      return 5;
    case ValueKind::kSet:
      return 6;
    case ValueKind::kMap:
      return 7;
  }
  return 8;
}

}  // namespace

int Value::Compare(const Value& other) const {
  ValueKind k1 = kind(), k2 = other.kind();
  int r1 = KindRank(k1), r2 = KindRank(k2);
  if (r1 != r2) return r1 < r2 ? -1 : 1;
  switch (k1) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return Cmp3(static_cast<int64_t>(AsBool()),
                  static_cast<int64_t>(other.AsBool()));
    case ValueKind::kInt:
    case ValueKind::kDouble: {
      if (k1 == ValueKind::kInt && k2 == ValueKind::kInt) {
        return Cmp3(AsInt(), other.AsInt());
      }
      double a = k1 == ValueKind::kInt ? static_cast<double>(AsInt())
                                       : AsDouble();
      double b = k2 == ValueKind::kInt ? static_cast<double>(other.AsInt())
                                       : other.AsDouble();
      return Cmp3(a, b);
    }
    case ValueKind::kString:
      return AsString().compare(other.AsString());
    case ValueKind::kIp:
      return Cmp3(AsIp(), other.AsIp());
    case ValueKind::kList:
    case ValueKind::kSet: {
      const ValueList& a = AsList();
      const ValueList& b = other.AsList();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return Cmp3(static_cast<int64_t>(a.size()),
                  static_cast<int64_t>(b.size()));
    }
    case ValueKind::kMap: {
      const ValueMap& a = AsMap();
      const ValueMap& b = other.AsMap();
      auto ia = a.begin(), ib = b.begin();
      for (; ia != a.end() && ib != b.end(); ++ia, ++ib) {
        int c = ia->first.compare(ib->first);
        if (c != 0) return c;
        c = ia->second.Compare(ib->second);
        if (c != 0) return c;
      }
      if (ia != a.end()) return 1;
      if (ib != b.end()) return -1;
      return 0;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(KindRank(kind())) * 0x9e3779b97f4a7c15ull;
  auto mix = [&seed](size_t h) {
    seed ^= h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  };
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      mix(std::hash<bool>()(AsBool()));
      break;
    case ValueKind::kInt:
      mix(std::hash<double>()(static_cast<double>(AsInt())));
      break;
    case ValueKind::kDouble:
      mix(std::hash<double>()(AsDouble()));
      break;
    case ValueKind::kString:
      mix(std::hash<std::string>()(AsString()));
      break;
    case ValueKind::kIp:
      mix(std::hash<uint32_t>()(AsIp()));
      break;
    case ValueKind::kList:
    case ValueKind::kSet:
      for (const Value& v : AsList()) mix(v.Hash());
      break;
    case ValueKind::kMap:
      for (const auto& [k, v] : AsMap()) {
        mix(std::hash<std::string>()(k));
        mix(v.Hash());
      }
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueKind::kString:
      return "'" + AsString() + "'";
    case ValueKind::kIp: {
      uint32_t ip = AsIp();
      char buf[20];
      std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                    (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
      return buf;
    }
    case ValueKind::kList:
    case ValueKind::kSet: {
      std::string out = kind() == ValueKind::kList ? "[" : "{";
      const ValueList& elems = AsList();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems[i].ToString();
      }
      out += kind() == ValueKind::kList ? "]" : "}";
      return out;
    }
    case ValueKind::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : AsMap()) {
        if (!first) out += ", ";
        first = false;
        out += k;
        out += ": ";
        out += v.ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

void Value::EncodeBinary(std::string* out) const {
  ValueKind k = kind();
  PutFixed8(out, static_cast<uint8_t>(k));
  switch (k) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      PutFixed8(out, AsBool() ? 1 : 0);
      break;
    case ValueKind::kInt:
      PutFixedI64(out, AsInt());
      break;
    case ValueKind::kDouble:
      PutDouble(out, AsDouble());
      break;
    case ValueKind::kString:
      PutString(out, AsString());
      break;
    case ValueKind::kIp:
      PutFixed32(out, AsIp());
      break;
    case ValueKind::kList:
    case ValueKind::kSet: {
      const ValueList& elems = AsList();
      PutFixed32(out, static_cast<uint32_t>(elems.size()));
      for (const Value& v : elems) v.EncodeBinary(out);
      break;
    }
    case ValueKind::kMap: {
      const ValueMap& entries = AsMap();
      PutFixed32(out, static_cast<uint32_t>(entries.size()));
      for (const auto& [key, v] : entries) {
        PutString(out, key);
        v.EncodeBinary(out);
      }
      break;
    }
  }
}

Result<Value> Value::DecodeBinary(BinaryReader* reader) {
  uint8_t tag = 0;
  NEPAL_RETURN_NOT_OK(reader->ReadFixed8(&tag));
  switch (static_cast<ValueKind>(tag)) {
    case ValueKind::kNull:
      return Value::Null();
    case ValueKind::kBool: {
      uint8_t b = 0;
      NEPAL_RETURN_NOT_OK(reader->ReadFixed8(&b));
      return Value(b != 0);
    }
    case ValueKind::kInt: {
      int64_t i = 0;
      NEPAL_RETURN_NOT_OK(reader->ReadFixedI64(&i));
      return Value(i);
    }
    case ValueKind::kDouble: {
      double d = 0;
      NEPAL_RETURN_NOT_OK(reader->ReadDouble(&d));
      return Value(d);
    }
    case ValueKind::kString: {
      std::string s;
      NEPAL_RETURN_NOT_OK(reader->ReadString(&s));
      return Value(std::move(s));
    }
    case ValueKind::kIp: {
      uint32_t addr = 0;
      NEPAL_RETURN_NOT_OK(reader->ReadFixed32(&addr));
      return Value::Ip(addr);
    }
    case ValueKind::kList:
    case ValueKind::kSet: {
      uint32_t n = 0;
      NEPAL_RETURN_NOT_OK(reader->ReadFixed32(&n));
      if (n > reader->remaining()) {
        return Status::Corruption("container length " + std::to_string(n) +
                                  " exceeds remaining buffer");
      }
      ValueList elems;
      elems.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        NEPAL_ASSIGN_OR_RETURN(Value v, DecodeBinary(reader));
        elems.push_back(std::move(v));
      }
      // Sets were sorted and deduped at construction; Value::Set re-derives
      // that invariant, so a decoded set equals the encoded one.
      return static_cast<ValueKind>(tag) == ValueKind::kList
                 ? Value::List(std::move(elems))
                 : Value::Set(std::move(elems));
    }
    case ValueKind::kMap: {
      uint32_t n = 0;
      NEPAL_RETURN_NOT_OK(reader->ReadFixed32(&n));
      if (n > reader->remaining()) {
        return Status::Corruption("map length " + std::to_string(n) +
                                  " exceeds remaining buffer");
      }
      ValueMap entries;
      for (uint32_t i = 0; i < n; ++i) {
        std::string key;
        NEPAL_RETURN_NOT_OK(reader->ReadString(&key));
        NEPAL_ASSIGN_OR_RETURN(Value v, DecodeBinary(reader));
        entries.emplace(std::move(key), std::move(v));
      }
      return Value::Map(std::move(entries));
    }
  }
  return Status::Corruption("unknown value tag " + std::to_string(tag));
}

size_t Value::MemoryUsage() const {
  size_t bytes = sizeof(Value);
  switch (kind()) {
    case ValueKind::kString:
      bytes += AsString().capacity();
      break;
    case ValueKind::kList:
    case ValueKind::kSet:
      for (const Value& v : AsList()) bytes += v.MemoryUsage();
      break;
    case ValueKind::kMap:
      for (const auto& [k, v] : AsMap()) {
        bytes += k.capacity() + v.MemoryUsage();
      }
      break;
    default:
      break;
  }
  return bytes;
}

}  // namespace nepal
