#include "common/thread_pool.h"

namespace nepal::common {

ThreadPool::ThreadPool(size_t workers) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  tasks_run_metric_ = registry.GetCounter("nepal.pool.tasks_run");
  steals_metric_ = registry.GetCounter("nepal.pool.steals");
  queue_depth_metric_ = registry.GetGauge("nepal.pool.queue_depth");
  deques_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<WorkDeque>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: joining workers during static destruction races
  // other global teardown.
  static ThreadPool* pool = [] {
    size_t hw = std::thread::hardware_concurrency();
    return new ThreadPool(hw == 0 ? 1 : hw);
  }();
  return *pool;
}

bool ThreadPool::TryTake(size_t home, Task* out) {
  const size_t n = deques_.size();
  bool found = false;
  bool stolen = false;
  if (home < n) {
    WorkDeque& mine = *deques_[home];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.tasks.empty()) {
      *out = std::move(mine.tasks.back());
      mine.tasks.pop_back();
      found = true;
    }
  }
  for (size_t k = 0; !found && k < n; ++k) {
    size_t victim = (home + 1 + k) % n;
    if (victim == home) continue;
    WorkDeque& theirs = *deques_[victim];
    std::lock_guard<std::mutex> lock(theirs.mu);
    if (!theirs.tasks.empty()) {
      *out = std::move(theirs.tasks.front());
      theirs.tasks.pop_front();
      found = true;
      stolen = true;
    }
  }
  if (!found) return false;
  if (stolen) {
    steals_.fetch_add(1, std::memory_order_relaxed);
    steals_metric_->Add(1);
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    --queued_;
  }
  queue_depth_metric_->Add(-1);
  return true;
}

void ThreadPool::Execute(const Task& task) {
  task.batch->tasks[task.index]();
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  tasks_run_metric_->Add(1);
  size_t done = task.batch->done.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (done == task.batch->tasks.size()) {
    // Lock before notifying so the completion cannot slip between the
    // waiter's done-check and its wait.
    std::lock_guard<std::mutex> lock(task.batch->mu);
    task.batch->cv.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t id) {
  for (;;) {
    Task task;
    if (TryTake(id, &task)) {
      Execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_) return;
  }
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty() || tasks.size() == 1) {
    for (auto& task : tasks) task();
    tasks_run_.fetch_add(tasks.size(), std::memory_order_relaxed);
    tasks_run_metric_->Add(tasks.size());
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  const size_t n = batch->tasks.size();
  for (size_t i = 0; i < n; ++i) {
    size_t slot = push_cursor_.fetch_add(1, std::memory_order_relaxed) %
                  deques_.size();
    std::lock_guard<std::mutex> lock(deques_[slot]->mu);
    deques_[slot]->tasks.push_back(Task{batch, i});
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    queued_ += n;
  }
  queue_depth_metric_->Add(static_cast<int64_t>(n));
  batches_.fetch_add(1, std::memory_order_relaxed);
  wake_cv_.notify_all();
  // Help-first wait: execute queued tasks (this batch's or another's)
  // instead of blocking, then sleep only when every task is claimed.
  while (batch->done.load(std::memory_order_acquire) < n) {
    Task task;
    if (TryTake(deques_.size(), &task)) {
      Execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(batch->mu);
    if (batch->done.load(std::memory_order_acquire) >= n) break;
    batch->cv.wait(lock);
  }
}

}  // namespace nepal::common
