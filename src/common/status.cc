#include "common/status.h"

namespace nepal {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kSchemaViolation:
      return "SchemaViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace nepal
