// Transaction-time primitives for Nepal's temporal graph store.
//
// Timestamps are microseconds since the Unix epoch. Validity periods are
// half-open intervals [start, end): an element version with
// end == kTimestampMax is current ("still exists", printed as an open
// interval, matching the paper's result2 example).

#ifndef NEPAL_COMMON_TIME_H_
#define NEPAL_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace nepal {

using Timestamp = int64_t;

inline constexpr Timestamp kTimestampMin = 0;
inline constexpr Timestamp kTimestampMax =
    std::numeric_limits<Timestamp>::max();

/// Parses "YYYY-MM-DD HH:MM[:SS[.ffffff]]" (the literal format used in NQL
/// AT clauses) into microseconds since epoch, interpreting the civil time
/// as UTC. A bare "YYYY-MM-DD" is midnight.
Result<Timestamp> ParseTimestamp(const std::string& text);

/// Inverse of ParseTimestamp: "YYYY-MM-DD HH:MM:SS[.ffffff]".
/// kTimestampMax renders as "" (open end, as in the paper's result output).
std::string FormatTimestamp(Timestamp ts);

/// Wall-clock microseconds since the Unix epoch. Used to stamp shipped WAL
/// frames so a replication follower can report its lag; not for the
/// transaction clock (writers set that explicitly).
int64_t WallClockMicros();

/// Half-open validity interval [start, end).
struct Interval {
  Timestamp start = kTimestampMin;
  Timestamp end = kTimestampMax;

  static Interval All() { return {kTimestampMin, kTimestampMax}; }
  /// Degenerate interval containing exactly one instant.
  static Interval At(Timestamp t) { return {t, t == kTimestampMax ? t : t + 1}; }

  bool empty() const { return start >= end; }
  bool Contains(Timestamp t) const { return t >= start && t < end; }
  bool Overlaps(const Interval& o) const {
    return start < o.end && o.start < end;
  }
  /// True if the two intervals overlap or touch (can be coalesced).
  bool Meets(const Interval& o) const {
    return start <= o.end && o.start <= end;
  }

  /// Canonical empty interval (all empty intersections normalize to this,
  /// so empty results compare equal and never carry garbage endpoints).
  static Interval None() { return {kTimestampMin, kTimestampMin}; }

  Interval Intersect(const Interval& o) const {
    Interval out{start > o.start ? start : o.start,
                 end < o.end ? end : o.end};
    // Disjoint or touching operands ([a,b) ∩ [b,c)) would otherwise yield a
    // non-canonical start > end pair; normalize every empty result.
    if (out.start >= out.end) return None();
    return out;
  }
  /// Union of two meeting intervals; caller must check Meets() first.
  Interval Span(const Interval& o) const {
    return {start < o.start ? start : o.start, end > o.end ? end : o.end};
  }

  bool operator==(const Interval& o) const = default;

  /// "[2017-02-15 09:15:00, )" style rendering.
  std::string ToString() const;
};

/// A set of disjoint intervals kept sorted and coalesced; the result type of
/// "When Exists" temporal aggregation queries.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Inserts an interval, merging it with any intervals it meets.
  void Add(const Interval& iv);

  bool empty() const { return intervals_.empty(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Earliest instant covered; kTimestampMax when empty.
  Timestamp FirstTime() const;
  /// Latest covered instant's interval end; kTimestampMin when empty.
  /// (An open interval yields kTimestampMax: "still exists".)
  Timestamp LastTime() const;

  bool Contains(Timestamp t) const;

  std::string ToString() const;

 private:
  std::vector<Interval> intervals_;  // sorted by start, pairwise disjoint
};

}  // namespace nepal

#endif  // NEPAL_COMMON_TIME_H_
