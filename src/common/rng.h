// Deterministic pseudo-random generator used by workload generators and
// property tests. A thin splitmix64/xoshiro-style wrapper so results are
// stable across standard library implementations.

#ifndef NEPAL_COMMON_RNG_H_
#define NEPAL_COMMON_RNG_H_

#include <cstdint>

namespace nepal {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    // splitmix64
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace nepal

#endif  // NEPAL_COMMON_RNG_H_
