// A small work-stealing thread pool for frontier-parallel query evaluation.
//
// Tasks are submitted in batches; each batch's tasks are spread round-robin
// over per-worker deques. A worker pops from the back of its own deque
// (LIFO, cache-warm) and steals from the front of other workers' deques
// (FIFO, coarse-grained work first). The thread that calls RunBatch also
// claims and steals tasks while it waits, so RunBatch may be invoked from
// inside a running task — nested parallelism cannot deadlock the pool.

#ifndef NEPAL_COMMON_THREAD_POOL_H_
#define NEPAL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace nepal::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads. With zero workers the pool still works:
  /// RunBatch simply runs every task inline on the calling thread.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware. Constructed on first use and
  /// intentionally never destroyed (no shutdown races at process exit).
  static ThreadPool& Shared();

  /// Runs every task and returns once all have finished. The calling thread
  /// participates (it executes queued tasks while waiting), so total
  /// concurrency is worker_count() + 1. Safe to call concurrently from
  /// several threads and from inside a task.
  void RunBatch(std::vector<std::function<void()>> tasks);

  /// Pool-local introspection counters (this pool only; the registry
  /// metrics below aggregate over every pool in the process).
  struct Stats {
    uint64_t tasks_run = 0;  // tasks executed to completion
    uint64_t steals = 0;     // tasks taken from another worker's deque
    uint64_t batches = 0;    // RunBatch calls that reached the deques
  };
  Stats stats() const {
    return Stats{tasks_run_.load(std::memory_order_relaxed),
                 steals_.load(std::memory_order_relaxed),
                 batches_.load(std::memory_order_relaxed)};
  }

 private:
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  struct Task {
    std::shared_ptr<Batch> batch;
    size_t index = 0;
  };
  struct WorkDeque {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Pops a task: from `home`'s own deque back, else steals from another
  /// deque's front. `home >= deques_.size()` means "external thief" (a
  /// RunBatch caller), which only steals.
  bool TryTake(size_t home, Task* out);
  void Execute(const Task& task);
  void WorkerLoop(size_t id);

  std::vector<std::unique_ptr<WorkDeque>> deques_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  size_t queued_ = 0;   // unclaimed tasks, guarded by wake_mu_
  bool stop_ = false;   // guarded by wake_mu_
  std::atomic<size_t> push_cursor_{0};

  // Introspection: pool-local atomics plus process-wide registry metrics
  // ("nepal.pool.tasks_run" / "nepal.pool.steals" counters and the
  // "nepal.pool.queue_depth" gauge). The metric pointers are cached at
  // construction — registry lookups never sit on the hot path.
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> batches_{0};
  obs::Counter* tasks_run_metric_ = nullptr;
  obs::Counter* steals_metric_ = nullptr;
  obs::Gauge* queue_depth_metric_ = nullptr;
};

}  // namespace nepal::common

#endif  // NEPAL_COMMON_THREAD_POOL_H_
