// A small work-stealing thread pool for frontier-parallel query evaluation.
//
// Tasks are submitted in batches; each batch's tasks are spread round-robin
// over per-worker deques. A worker pops from the back of its own deque
// (LIFO, cache-warm) and steals from the front of other workers' deques
// (FIFO, coarse-grained work first). The thread that calls RunBatch also
// claims and steals tasks while it waits, so RunBatch may be invoked from
// inside a running task — nested parallelism cannot deadlock the pool.

#ifndef NEPAL_COMMON_THREAD_POOL_H_
#define NEPAL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nepal::common {

class ThreadPool {
 public:
  /// Spawns `workers` threads. With zero workers the pool still works:
  /// RunBatch simply runs every task inline on the calling thread.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware. Constructed on first use and
  /// intentionally never destroyed (no shutdown races at process exit).
  static ThreadPool& Shared();

  /// Runs every task and returns once all have finished. The calling thread
  /// participates (it executes queued tasks while waiting), so total
  /// concurrency is worker_count() + 1. Safe to call concurrently from
  /// several threads and from inside a task.
  void RunBatch(std::vector<std::function<void()>> tasks);

 private:
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  struct Task {
    std::shared_ptr<Batch> batch;
    size_t index = 0;
  };
  struct WorkDeque {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Pops a task: from `home`'s own deque back, else steals from another
  /// deque's front. `home >= deques_.size()` means "external thief" (a
  /// RunBatch caller), which only steals.
  bool TryTake(size_t home, Task* out);
  static void Execute(const Task& task);
  void WorkerLoop(size_t id);

  std::vector<std::unique_ptr<WorkDeque>> deques_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  size_t queued_ = 0;   // unclaimed tasks, guarded by wake_mu_
  bool stop_ = false;   // guarded by wake_mu_
  std::atomic<size_t> push_cursor_{0};
};

}  // namespace nepal::common

#endif  // NEPAL_COMMON_THREAD_POOL_H_
