// Element identifiers.
//
// Every node and edge in a Nepal graph carries a globally unique uid; the
// uniqueness constraint spans node and edge spaces (the paper keeps a
// dedicated table to guarantee this).

#ifndef NEPAL_COMMON_IDS_H_
#define NEPAL_COMMON_IDS_H_

#include <cstdint>

namespace nepal {

using Uid = uint64_t;

inline constexpr Uid kInvalidUid = 0;

}  // namespace nepal

#endif  // NEPAL_COMMON_IDS_H_
