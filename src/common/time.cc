#include "common/time.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace nepal {
namespace {

constexpr int64_t kMicrosPerSecond = 1000000;

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

// Days from 1970-01-01 to year-month-day (civil, proleptic Gregorian).
int64_t DaysFromEpoch(int year, int month, int day) {
  // Howard Hinnant's days_from_civil algorithm.
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

// Inverse of DaysFromEpoch.
void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

}  // namespace

Result<Timestamp> ParseTimestamp(const std::string& text) {
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  int64_t micros = 0;
  const char* p = text.c_str();
  int consumed = 0;
  if (std::sscanf(p, "%d-%d-%d%n", &year, &month, &day, &consumed) != 3) {
    return Status::ParseError("bad timestamp literal: '" + text + "'");
  }
  p += consumed;
  if (*p != '\0') {
    if (*p != ' ' && *p != 'T') {
      return Status::ParseError("bad timestamp literal: '" + text + "'");
    }
    ++p;
    if (std::sscanf(p, "%d:%d%n", &hour, &minute, &consumed) != 2) {
      return Status::ParseError("bad time-of-day in: '" + text + "'");
    }
    p += consumed;
    if (*p == ':') {
      ++p;
      if (std::sscanf(p, "%d%n", &second, &consumed) != 1) {
        return Status::ParseError("bad seconds in: '" + text + "'");
      }
      p += consumed;
      if (*p == '.') {
        ++p;
        int64_t frac = 0;
        int digits = 0;
        while (*p >= '0' && *p <= '9' && digits < 6) {
          frac = frac * 10 + (*p - '0');
          ++p;
          ++digits;
        }
        while (digits < 6) {
          frac *= 10;
          ++digits;
        }
        micros = frac;
      }
    }
    if (*p != '\0') {
      return Status::ParseError("trailing characters in timestamp: '" + text +
                                "'");
    }
  }
  if (month < 1 || month > 12 || day < 1 || day > DaysInMonth(year, month) ||
      hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 60) {
    return Status::ParseError("out-of-range timestamp: '" + text + "'");
  }
  int64_t days = DaysFromEpoch(year, month, day);
  int64_t seconds = days * 86400 + hour * 3600 + minute * 60 + second;
  return seconds * kMicrosPerSecond + micros;
}

std::string FormatTimestamp(Timestamp ts) {
  if (ts == kTimestampMax) return "";
  int64_t seconds = ts / kMicrosPerSecond;
  int64_t micros = ts % kMicrosPerSecond;
  if (micros < 0) {
    micros += kMicrosPerSecond;
    --seconds;
  }
  int64_t days = seconds / 86400;
  int64_t sod = seconds % 86400;
  if (sod < 0) {
    sod += 86400;
    --days;
  }
  int year, month, day;
  CivilFromDays(days, &year, &month, &day);
  char buf[48];
  if (micros != 0) {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%06lld",
                  year, month, day, static_cast<int>(sod / 3600),
                  static_cast<int>((sod / 60) % 60), static_cast<int>(sod % 60),
                  static_cast<long long>(micros));
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", year,
                  month, day, static_cast<int>(sod / 3600),
                  static_cast<int>((sod / 60) % 60),
                  static_cast<int>(sod % 60));
  }
  return buf;
}

std::string Interval::ToString() const {
  std::string out = "[";
  out += FormatTimestamp(start);
  out += ", ";
  out += FormatTimestamp(end);
  out += ")";
  return out;
}

void IntervalSet::Add(const Interval& iv) {
  if (iv.empty()) return;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  // Merge backwards with a predecessor that meets iv.
  if (it != intervals_.begin() && std::prev(it)->Meets(iv)) --it;
  Interval merged = iv;
  auto erase_begin = it;
  while (it != intervals_.end() && it->Meets(merged)) {
    merged = merged.Span(*it);
    ++it;
  }
  it = intervals_.erase(erase_begin, it);
  intervals_.insert(it, merged);
}

Timestamp IntervalSet::FirstTime() const {
  return intervals_.empty() ? kTimestampMax : intervals_.front().start;
}

Timestamp IntervalSet::LastTime() const {
  return intervals_.empty() ? kTimestampMin : intervals_.back().end;
}

int64_t WallClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool IntervalSet::Contains(Timestamp t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](Timestamp v, const Interval& iv) { return v < iv.start; });
  if (it == intervals_.begin()) return false;
  return std::prev(it)->Contains(t);
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ", ";
    out += intervals_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace nepal
