// Little-endian binary encoding primitives shared by the durability layer
// (src/persist) and the statistics snapshot codec (src/stats).
//
// Writers append fixed-width little-endian integers and length-prefixed
// strings to a std::string buffer. BinaryReader consumes the same layout
// with bounds-checked reads that surface truncation as a Status instead of
// reading past the end — the property recovery depends on to turn a torn
// file into a clean error rather than undefined behavior.

#ifndef NEPAL_COMMON_BINARY_H_
#define NEPAL_COMMON_BINARY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace nepal {

inline void PutFixed8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

inline void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

inline void PutFixedI64(std::string* out, int64_t v) {
  PutFixed64(out, static_cast<uint64_t>(v));
}

inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  PutFixed64(out, bits);
}

/// u32 length prefix + raw bytes.
inline void PutString(std::string* out, std::string_view s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked sequential reader over an in-memory buffer. Every Read*
/// returns a non-OK Status on truncation; the caller's NEPAL_RETURN_NOT_OK
/// chain then propagates a single clear "truncated" error.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

  Status ReadFixed8(uint8_t* v) {
    NEPAL_RETURN_NOT_OK(Need(1));
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadFixed32(uint32_t* v) {
    NEPAL_RETURN_NOT_OK(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status ReadFixed64(uint64_t* v) {
    NEPAL_RETURN_NOT_OK(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status ReadFixedI64(int64_t* v) {
    uint64_t u = 0;
    NEPAL_RETURN_NOT_OK(ReadFixed64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status ReadDouble(double* v) {
    uint64_t bits = 0;
    NEPAL_RETURN_NOT_OK(ReadFixed64(&bits));
    __builtin_memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  /// Raw bytes of a known length (no prefix).
  Status ReadBytes(size_t n, std::string* s) {
    NEPAL_RETURN_NOT_OK(Need(n));
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    uint32_t len = 0;
    NEPAL_RETURN_NOT_OK(ReadFixed32(&len));
    NEPAL_RETURN_NOT_OK(Need(len));
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

 private:
  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::Corruption(
          "truncated binary buffer: need " + std::to_string(n) +
          " byte(s) at offset " + std::to_string(pos_) + ", have " +
          std::to_string(remaining()));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace nepal

#endif  // NEPAL_COMMON_BINARY_H_
