// Status and Result<T>: the error-handling model used across Nepal.
//
// Nepal follows the RocksDB/Arrow idiom: no exceptions cross public API
// boundaries; fallible operations return a Status (or a Result<T> when a
// value is produced).

#ifndef NEPAL_COMMON_STATUS_H_
#define NEPAL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace nepal {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input from the caller
  kNotFound,          // a named entity (class, field, uid) does not exist
  kAlreadyExists,     // uniqueness violation
  kSchemaViolation,   // insert/update rejected by the strongly-typed schema
  kParseError,        // NQL / schema-DSL text failed to parse
  kPlanError,         // query cannot be planned (e.g. no anchor)
  kUnsupported,       // feature not available on this backend
  kInternal,          // invariant violation inside Nepal
  kCorruption,        // on-disk data failed a CRC / framing / schema check
  kIoError,           // the operating system refused a file operation
  kReadOnly,          // write routed at a read-only replica source
  kUnavailable,       // peer gone / subscriber lagged beyond its buffer
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status SchemaViolation(std::string msg) {
    return Status(StatusCode::kSchemaViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// Explicitly discards the status (destructor paths that cannot report).
  void IgnoreError() const {}
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Never both.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return MakeValue();` and `return status;`
  // both work, matching the Arrow Result<T> ergonomics.
  Result(T value) : value_(std::move(value)) {}                 // NOLINT
  Result(Status status) : status_(std::move(status)) {          // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status to the caller.
#define NEPAL_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::nepal::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define NEPAL_CONCAT_IMPL(a, b) a##b
#define NEPAL_CONCAT(a, b) NEPAL_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on error returns the Status, otherwise
// moves the value into `lhs` (which may be a declaration).
#define NEPAL_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  NEPAL_ASSIGN_OR_RETURN_IMPL(NEPAL_CONCAT(_res_, __LINE__), lhs, \
                              rexpr)

#define NEPAL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

}  // namespace nepal

#endif  // NEPAL_COMMON_STATUS_H_
