// Value: the dynamically-typed cell used by Nepal records.
//
// Although Nepal's schema is strongly typed, rows flow through the query
// pipeline as vectors of Value cells whose runtime tag must agree with the
// schema-declared field type (enforced at insert/update time by
// schema::ValidateRecord). Container values (list/set/map) implement the
// TOSCA container types used for structured data such as routing tables.

#ifndef NEPAL_COMMON_VALUE_H_
#define NEPAL_COMMON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace nepal {

enum class ValueKind {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kIp,      // IPv4 address, stored as host-order uint32
  kList,
  kSet,
  kMap,
};

const char* ValueKindToString(ValueKind kind);

class BinaryReader;
class Value;

/// Ordered element container; kSet keeps elements sorted and unique.
using ValueList = std::vector<Value>;
/// String-keyed map, sorted by key.
using ValueMap = std::map<std::string, Value>;

class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  explicit Value(bool b) : rep_(b) {}
  explicit Value(int64_t i) : rep_(i) {}
  explicit Value(int i) : rep_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : rep_(d) {}
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(const char* s) : rep_(std::string(s)) {}

  static Value Null() { return Value(); }
  static Value Ip(uint32_t host_order_addr) {
    Value v;
    v.rep_ = IpRep{host_order_addr};
    return v;
  }
  static Value List(ValueList elems);
  static Value Set(ValueList elems);  // sorts and dedupes
  static Value Map(ValueMap entries);

  /// Parses dotted-quad "a.b.c.d" notation.
  static Result<Value> ParseIp(const std::string& text);

  ValueKind kind() const;
  bool is_null() const { return kind() == ValueKind::kNull; }

  // Accessors; caller must check kind() first (asserted in debug builds).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  uint32_t AsIp() const { return std::get<IpRep>(rep_).addr; }
  const ValueList& AsList() const;
  const ValueMap& AsMap() const;

  /// Numeric kinds compare by value across kInt/kDouble; other kinds must
  /// match exactly. Null compares less than everything else.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;

  /// Literal rendering: strings quoted, IPs dotted-quad, containers bracketed.
  std::string ToString() const;

  /// Approximate heap footprint in bytes, used by storage accounting.
  size_t MemoryUsage() const;

  /// Appends the canonical binary form (1 kind byte + payload) used by the
  /// durability layer. Lossless for every kind, including containers.
  void EncodeBinary(std::string* out) const;
  /// Inverse of EncodeBinary; fails with Corruption on truncated or
  /// malformed input.
  static Result<Value> DecodeBinary(BinaryReader* reader);

 private:
  struct IpRep {
    uint32_t addr;
    bool operator==(const IpRep&) const = default;
  };
  struct ContainerRep {
    ValueKind kind;  // kList or kSet
    std::shared_ptr<const ValueList> elems;
  };
  struct MapRep {
    std::shared_ptr<const ValueMap> entries;
  };

  std::variant<std::monostate, bool, int64_t, double, std::string, IpRep,
               ContainerRep, MapRep>
      rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace nepal

#endif  // NEPAL_COMMON_VALUE_H_
